//! Error types for parsing and tree manipulation.

use std::fmt;

/// An error produced while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// 1-based line number of the error.
    pub line: usize,
    /// 1-based column number of the error.
    pub column: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError { offset, line, column, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}:{} (offset {}): {}", self.line, self.column, self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// An error produced by a structural edit on a [`crate::Document`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node id does not refer to a live node of this document
    /// (it was never allocated here, or its subtree has been deleted).
    StaleNode,
    /// The operation would detach, delete, or re-parent the document root.
    RootImmutable,
    /// The operation would create a cycle (e.g. appending an ancestor
    /// under one of its own descendants).
    WouldCycle,
    /// A child position index was out of bounds for the parent.
    PositionOutOfBounds {
        /// Number of children the parent has.
        len: usize,
        /// The requested index.
        index: usize,
    },
    /// The target node has the wrong kind for this operation
    /// (e.g. setting an attribute on a text node).
    WrongKind {
        /// The node kind the operation requires.
        expected: &'static str,
    },
    /// The referenced node is not attached to the tree in the way the
    /// operation requires (e.g. `insert_before` on a node with no parent).
    NotAttached,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::StaleNode => write!(f, "stale or foreign node id"),
            TreeError::RootImmutable => write!(f, "the document root cannot be detached or deleted"),
            TreeError::WouldCycle => write!(f, "operation would create a cycle in the tree"),
            TreeError::PositionOutOfBounds { len, index } => {
                write!(f, "child position {index} out of bounds (parent has {len} children)")
            }
            TreeError::WrongKind { expected } => write!(f, "node has wrong kind, expected {expected}"),
            TreeError::NotAttached => write!(f, "node is not attached where the operation requires"),
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_includes_location() {
        let e = ParseError::new(10, 2, 3, "unexpected `<`");
        let s = e.to_string();
        assert!(s.contains("2:3"), "{s}");
        assert!(s.contains("offset 10"), "{s}");
        assert!(s.contains("unexpected `<`"), "{s}");
    }

    #[test]
    fn tree_error_display_variants() {
        assert!(TreeError::StaleNode.to_string().contains("stale"));
        assert!(TreeError::RootImmutable.to_string().contains("root"));
        assert!(TreeError::WouldCycle.to_string().contains("cycle"));
        assert!(TreeError::PositionOutOfBounds { len: 2, index: 5 }.to_string().contains('5'));
        assert!(TreeError::WrongKind { expected: "element" }.to_string().contains("element"));
        assert!(TreeError::NotAttached.to_string().contains("attached"));
    }
}
