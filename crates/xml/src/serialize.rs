//! XML serialization: escaping plus compact and pretty output.

use crate::tree::{Document, NodeId, NodeKind};

/// Options controlling serialization.
#[derive(Debug, Clone)]
pub struct SerializeOptions {
    /// Emit `<?xml version="1.0" encoding="UTF-8"?>` first.
    pub declaration: bool,
    /// Indent nested elements (2 spaces per level). Text-bearing elements
    /// are kept on one line so no whitespace-only text nodes are invented.
    pub pretty: bool,
}

impl SerializeOptions {
    /// Compact output: no declaration, no indentation.
    pub fn compact() -> Self {
        SerializeOptions { declaration: false, pretty: false }
    }

    /// Pretty output with declaration.
    pub fn pretty() -> Self {
        SerializeOptions { declaration: true, pretty: true }
    }
}

impl Default for SerializeOptions {
    fn default() -> Self {
        SerializeOptions::compact()
    }
}

/// Escapes text-node content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute-value content (also `"` and newlines).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serializes the subtree rooted at `node`.
pub fn serialize(doc: &Document, node: NodeId, opts: &SerializeOptions) -> String {
    let mut out = String::new();
    if opts.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if opts.pretty {
            out.push('\n');
        }
    }
    write_node(doc, node, opts, 0, &mut out);
    out
}

fn has_element_children(doc: &Document, node: NodeId) -> bool {
    doc.children(node)
        .map(|cs| {
            cs.iter().any(|c| {
                matches!(
                    doc.kind(*c),
                    Ok(NodeKind::Element { .. }) | Ok(NodeKind::Comment(_)) | Ok(NodeKind::Pi { .. })
                )
            })
        })
        .unwrap_or(false)
}

fn write_node(doc: &Document, node: NodeId, opts: &SerializeOptions, depth: usize, out: &mut String) {
    let indent = |out: &mut String, depth: usize| {
        if opts.pretty {
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
    };
    match doc.kind(node) {
        Ok(NodeKind::Element { name, attrs }) => {
            indent(out, depth);
            out.push('<');
            out.push_str(&name.as_string());
            for (an, av) in attrs {
                out.push(' ');
                out.push_str(&an.as_string());
                out.push_str("=\"");
                out.push_str(&escape_attr(av));
                out.push('"');
            }
            let children = doc.children(node).map(|c| c.to_vec()).unwrap_or_default();
            if children.is_empty() {
                out.push_str("/>");
                if opts.pretty {
                    out.push('\n');
                }
                return;
            }
            out.push('>');
            let block = opts.pretty && has_element_children(doc, node);
            if block {
                out.push('\n');
            }
            for child in children {
                if block {
                    write_node(doc, child, opts, depth + 1, out);
                } else {
                    // Inline (text-only content, or compact mode).
                    let inline_opts = SerializeOptions { declaration: false, pretty: false };
                    write_node(doc, child, &inline_opts, 0, out);
                }
            }
            if block {
                indent(out, depth);
            }
            out.push_str("</");
            out.push_str(&name.as_string());
            out.push('>');
            if opts.pretty {
                out.push('\n');
            }
        }
        Ok(NodeKind::Text(t)) => {
            out.push_str(&escape_text(t));
        }
        Ok(NodeKind::Cdata(t)) => {
            out.push_str("<![CDATA[");
            out.push_str(t);
            out.push_str("]]>");
        }
        Ok(NodeKind::Comment(t)) => {
            indent(out, depth);
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
            if opts.pretty {
                out.push('\n');
            }
        }
        Ok(NodeKind::Pi { target, data }) => {
            indent(out, depth);
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
            if opts.pretty {
                out.push('\n');
            }
        }
        Err(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    #[test]
    fn escaping() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_attr("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
        assert_eq!(escape_attr("tab\there"), "tab&#9;here");
    }

    #[test]
    fn compact_output() {
        let mut doc = Document::new("r");
        let root = doc.root();
        let a = doc.create_element("a");
        let t = doc.create_text("x & y");
        doc.append_child(a, t).unwrap();
        doc.append_child(root, a).unwrap();
        assert_eq!(doc.to_xml(), "<r><a>x &amp; y</a></r>");
    }

    #[test]
    fn pretty_output_indents_elements() {
        let mut doc = Document::new("r");
        let root = doc.root();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        let t = doc.create_text("leaf");
        doc.append_child(b, t).unwrap();
        doc.append_child(a, b).unwrap();
        doc.append_child(root, a).unwrap();
        let s = doc.to_xml_with(&SerializeOptions::pretty());
        assert!(s.starts_with("<?xml"));
        assert!(s.contains("\n  <a>\n"), "{s}");
        assert!(s.contains("\n    <b>leaf</b>\n"), "{s}");
    }

    #[test]
    fn cdata_comment_pi() {
        let mut doc = Document::new("r");
        let root = doc.root();
        let c = doc.create_cdata("a<b");
        doc.append_child(root, c).unwrap();
        let com = doc.create_comment(" note ");
        doc.append_child(root, com).unwrap();
        let pi = doc.create_pi("go", "now");
        doc.append_child(root, pi).unwrap();
        assert_eq!(doc.to_xml(), "<r><![CDATA[a<b]]><!-- note --><?go now?></r>");
    }

    #[test]
    fn empty_element_self_closes() {
        let doc = Document::new("solo");
        assert_eq!(doc.to_xml(), "<solo/>");
    }
}
