//! Qualified names (`prefix:local`).
//!
//! AXML documents mix plain element names (`player`, `points`) with
//! namespaced control elements (`axml:sc`, `axml:params`, `axml:catch`).
//! We keep namespace handling deliberately prefix-based: the AXML engine
//! recognizes the `axml` prefix literally, as the original platform did in
//! practice. Full URI-based namespace resolution is out of scope for the
//! protocols under study.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A qualified XML name: an optional prefix plus a local part.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QName {
    /// Namespace prefix, e.g. `axml` in `axml:sc`. `None` for unprefixed names.
    pub prefix: Option<String>,
    /// Local part, e.g. `sc` in `axml:sc`.
    pub local: String,
}

impl QName {
    /// Builds a name from a raw string, splitting on the first `:`.
    ///
    /// ```
    /// use axml_xml::QName;
    /// let q = QName::new("axml:sc");
    /// assert_eq!(q.prefix.as_deref(), Some("axml"));
    /// assert_eq!(q.local, "sc");
    /// assert_eq!(QName::new("player").prefix, None);
    /// ```
    pub fn new(raw: &str) -> Self {
        match raw.split_once(':') {
            Some((p, l)) if !p.is_empty() && !l.is_empty() => {
                QName { prefix: Some(p.to_string()), local: l.to_string() }
            }
            _ => QName { prefix: None, local: raw.to_string() },
        }
    }

    /// Builds an unprefixed name.
    pub fn local(local: impl Into<String>) -> Self {
        QName { prefix: None, local: local.into() }
    }

    /// Builds a prefixed name.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> Self {
        QName { prefix: Some(prefix.into()), local: local.into() }
    }

    /// True if this name carries the given prefix.
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.prefix.as_deref() == Some(prefix)
    }

    /// True if the name matches `prefix:local` exactly.
    pub fn is(&self, prefix: Option<&str>, local: &str) -> bool {
        self.prefix.as_deref() == prefix && self.local == local
    }

    /// The full `prefix:local` form.
    pub fn as_string(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{p}:{}", self.local),
            None => self.local.clone(),
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

impl From<&str> for QName {
    fn from(raw: &str) -> Self {
        QName::new(raw)
    }
}

impl From<String> for QName {
    fn from(raw: String) -> Self {
        QName::new(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_first_colon() {
        let q = QName::new("a:b:c");
        assert_eq!(q.prefix.as_deref(), Some("a"));
        assert_eq!(q.local, "b:c");
    }

    #[test]
    fn degenerate_colons_treated_as_local() {
        assert_eq!(QName::new(":x"), QName::local(":x"));
        assert_eq!(QName::new("x:"), QName::local("x:"));
        assert_eq!(QName::new(":"), QName::local(":"));
    }

    #[test]
    fn display_round_trips() {
        for raw in ["player", "axml:sc", "ns:deep"] {
            assert_eq!(QName::new(raw).to_string(), raw);
        }
    }

    #[test]
    fn is_and_has_prefix() {
        let q = QName::new("axml:sc");
        assert!(q.is(Some("axml"), "sc"));
        assert!(!q.is(None, "sc"));
        assert!(q.has_prefix("axml"));
        assert!(!q.has_prefix("xml"));
        assert!(QName::new("sc").is(None, "sc"));
    }

    #[test]
    fn from_impls() {
        let a: QName = "axml:value".into();
        let b: QName = String::from("axml:value").into();
        assert_eq!(a, b);
    }
}
