//! A from-scratch XML parser covering the subset AXML documents use.
//!
//! Supported: XML declaration, elements, attributes (single- or
//! double-quoted), character data with the five predefined entities and
//! numeric character references, CDATA sections, comments, processing
//! instructions, and a DOCTYPE declaration (skipped, internal subsets
//! without markup declarations only). Not supported (and not needed by the
//! AXML corpus): external entities, custom entity declarations, DTD
//! validation.

use crate::error::ParseError;
use crate::fragment::Fragment;
use crate::name::QName;
use crate::tree::{Document, NodeId};

/// Options controlling parsing.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Drop text nodes that consist entirely of whitespace (defaults to
    /// `true`; AXML documents are data-centric, indentation is noise).
    pub trim_whitespace: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { trim_whitespace: true }
    }
}

/// Parses a complete XML document with default options.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    parse_with(input, &ParseOptions::default())
}

/// Parses a complete XML document.
pub fn parse_with(input: &str, opts: &ParseOptions) -> Result<Document, ParseError> {
    let mut cur = Cursor::new(input, opts.clone());
    cur.skip_prolog()?;
    if !cur.starts_with("<") {
        return Err(cur.err("expected root element"));
    }
    let mut doc = Document::new("placeholder-root");
    let root = doc.root();
    cur.parse_element_into(&mut doc, root, true)?;
    cur.skip_misc()?;
    if !cur.at_end() {
        return Err(cur.err("trailing content after root element"));
    }
    Ok(doc)
}

/// Parses XML *content* (zero or more elements/text items) into fragments.
///
/// Used to decode service-call results shipped between peers.
///
/// ```
/// use axml_xml::parse_fragment;
/// let frags = parse_fragment("<a>1</a>text<b/>").unwrap();
/// assert_eq!(frags.len(), 3);
/// ```
pub fn parse_fragment(input: &str) -> Result<Vec<Fragment>, ParseError> {
    let wrapped = format!("<axml-fragment-wrapper>{input}</axml-fragment-wrapper>");
    let doc = parse_with(&wrapped, &ParseOptions { trim_whitespace: true })?;
    let root = doc.root();
    let mut out = Vec::new();
    for &child in doc.children(root).expect("live root") {
        out.push(Fragment::from_node(&doc, child).expect("live child"));
    }
    Ok(out)
}

struct Cursor<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    opts: ParseOptions,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str, opts: ParseOptions) -> Self {
        Cursor { input, bytes: input.as_bytes(), pos: 0, opts }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let upto = &self.input[..self.pos.min(self.input.len())];
        let line = upto.bytes().filter(|b| *b == b'\n').count() + 1;
        let column = upto.rsplit('\n').next().map(|l| l.chars().count()).unwrap_or(0) + 1;
        ParseError::new(self.pos, line, column, message)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Reads up to (not including) the next occurrence of `end`.
    fn read_until(&mut self, end: &str) -> Result<&'a str, ParseError> {
        match self.input[self.pos..].find(end) {
            Some(rel) => {
                let s = &self.input[self.pos..self.pos + rel];
                self.pos += rel + end.len();
                Ok(s)
            }
            None => Err(self.err(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.eat("<?xml") {
            self.read_until("?>")?;
        }
        self.skip_misc()?;
        if self.starts_with("<!DOCTYPE") {
            self.pos += "<!DOCTYPE".len();
            // Skip to the matching `>`, tolerating a bracketed internal subset.
            let mut depth = 0i32;
            loop {
                match self.bump() {
                    Some(b'[') => depth += 1,
                    Some(b']') => depth -= 1,
                    Some(b'>') if depth <= 0 => break,
                    Some(_) => {}
                    None => return Err(self.err("unterminated DOCTYPE")),
                }
            }
            self.skip_misc()?;
        }
        Ok(())
    }

    /// Skips whitespace, comments, and PIs between top-level constructs.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                self.read_until("-->")?;
            } else if self.starts_with("<?") && !self.starts_with("<?xml") {
                self.pos += 2;
                self.read_until("?>")?;
            } else {
                return Ok(());
            }
        }
    }

    fn read_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let name = &self.input[start..self.pos];
        if name.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '.') {
            return Err(self.err(format!("invalid name start in `{name}`")));
        }
        Ok(name)
    }

    fn decode_entities(&self, raw: &str, base: usize) -> Result<String, ParseError> {
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        let mut consumed = 0usize;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            let after = &rest[amp + 1..];
            let semi = after
                .find(';')
                .ok_or_else(|| ParseError::new(base + consumed + amp, 0, 0, "unterminated entity reference"))?;
            let ent = &after[..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code = u32::from_str_radix(&ent[2..], 16).map_err(|_| {
                        ParseError::new(base + consumed + amp, 0, 0, format!("bad hex char ref `&{ent};`"))
                    })?;
                    out.push(char::from_u32(code).ok_or_else(|| {
                        ParseError::new(base + consumed + amp, 0, 0, format!("invalid char ref `&{ent};`"))
                    })?);
                }
                _ if ent.starts_with('#') => {
                    let code = ent[1..]
                        .parse::<u32>()
                        .map_err(|_| ParseError::new(base + consumed + amp, 0, 0, format!("bad char ref `&{ent};`")))?;
                    out.push(char::from_u32(code).ok_or_else(|| {
                        ParseError::new(base + consumed + amp, 0, 0, format!("invalid char ref `&{ent};`"))
                    })?);
                }
                _ => return Err(ParseError::new(base + consumed + amp, 0, 0, format!("unknown entity `&{ent};`"))),
            }
            consumed += amp + 1 + semi + 1;
            rest = &after[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q as char,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let start = self.pos;
        let raw = self.read_until(&quote.to_string())?;
        if raw.contains('<') {
            return Err(self.err("`<` not allowed in attribute value"));
        }
        self.decode_entities(raw, start)
    }

    /// Parses one element. If `into_root` is true, the element's name and
    /// attributes overwrite `node` (used for the document root); otherwise a
    /// fresh child is appended under `node`.
    fn parse_element_into(&mut self, doc: &mut Document, node: NodeId, into_root: bool) -> Result<(), ParseError> {
        self.expect_str("<")?;
        let name = QName::new(self.read_name()?);
        let elem = if into_root {
            doc.set_name(node, name.clone()).expect("root is an element");
            node
        } else {
            let e = doc.create_element(name.clone());
            doc.append_child(node, e).expect("parent is live");
            e
        };
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') | Some(b'>') => break,
                Some(_) => {
                    let aname = QName::new(self.read_name()?);
                    self.skip_ws();
                    self.expect_str("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    if doc.attr(elem, &aname.as_string()).is_some() {
                        return Err(self.err(format!("duplicate attribute `{aname}`")));
                    }
                    doc.set_attr(elem, aname, value).expect("elem is an element");
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        if self.eat("/>") {
            return Ok(());
        }
        self.expect_str(">")?;
        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.read_name()?;
                if end_name != name.as_string() {
                    return Err(self.err(format!("mismatched end tag `</{end_name}>`, expected `</{name}>`")));
                }
                self.skip_ws();
                self.expect_str(">")?;
                return Ok(());
            } else if self.starts_with("<!--") {
                self.pos += 4;
                let text = self.read_until("-->")?.to_string();
                let c = doc.create_comment(text);
                doc.append_child(elem, c).expect("elem live");
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let text = self.read_until("]]>")?.to_string();
                let c = doc.create_cdata(text);
                doc.append_child(elem, c).expect("elem live");
            } else if self.starts_with("<?") {
                self.pos += 2;
                let body = self.read_until("?>")?;
                let (target, data) = match body.split_once(|c: char| c.is_ascii_whitespace()) {
                    Some((t, d)) => (t.to_string(), d.trim().to_string()),
                    None => (body.to_string(), String::new()),
                };
                let p = doc.create_pi(target, data);
                doc.append_child(elem, p).expect("elem live");
            } else if self.starts_with("<") {
                self.parse_element_into(doc, elem, false)?;
            } else if self.at_end() {
                return Err(self.err(format!("unexpected end of input inside `<{name}>`")));
            } else {
                // Character data up to the next `<`.
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = &self.input[start..self.pos];
                let decoded = self.decode_entities(raw, start)?;
                let keep = if self.opts.trim_whitespace { !decoded.trim().is_empty() } else { !decoded.is_empty() };
                if keep {
                    let text = if self.opts.trim_whitespace { decoded.trim().to_string() } else { decoded };
                    let t = doc.create_text(text);
                    doc.append_child(elem, t).expect("elem live");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;

    #[test]
    fn parses_declaration_and_simple_doc() {
        let doc = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<r><a>1</a></r>").unwrap();
        assert_eq!(doc.to_xml(), "<r><a>1</a></r>");
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let doc = parse(r#"<r a="1" b='two' c="x &amp; y"/>"#).unwrap();
        let root = doc.root();
        assert_eq!(doc.attr(root, "a"), Some("1"));
        assert_eq!(doc.attr(root, "b"), Some("two"));
        assert_eq!(doc.attr(root, "c"), Some("x & y"));
    }

    #[test]
    fn entity_decoding_in_text() {
        let doc = parse("<r>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</r>").unwrap();
        let root = doc.root();
        assert_eq!(doc.text_content(root).unwrap(), "<tag> & \"q\" 'a' AB");
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = parse("<r>&nbsp;</r>").unwrap_err();
        assert!(err.message.contains("unknown entity"), "{err}");
    }

    #[test]
    fn unterminated_entity_rejected() {
        assert!(parse("<r>&amp</r>").is_err());
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = parse("<r><![CDATA[a < b & c]]></r>").unwrap();
        let root = doc.root();
        let kids = doc.children(root).unwrap();
        assert_eq!(kids.len(), 1);
        assert_eq!(doc.kind(kids[0]).unwrap(), &NodeKind::Cdata("a < b & c".into()));
    }

    #[test]
    fn comments_and_pis_in_content() {
        let doc = parse("<r><!-- c --><?pi data here?><a/></r>").unwrap();
        let root = doc.root();
        let kids = doc.children(root).unwrap().to_vec();
        assert_eq!(kids.len(), 3);
        assert_eq!(doc.kind(kids[0]).unwrap(), &NodeKind::Comment(" c ".into()));
        assert_eq!(doc.kind(kids[1]).unwrap(), &NodeKind::Pi { target: "pi".into(), data: "data here".into() });
    }

    #[test]
    fn doctype_skipped() {
        let doc = parse("<!DOCTYPE r [ <!ELEMENT r ANY> ]><r/>").unwrap();
        assert_eq!(doc.to_xml(), "<r/>");
        let doc = parse("<!DOCTYPE r SYSTEM \"r.dtd\"><r/>").unwrap();
        assert_eq!(doc.to_xml(), "<r/>");
    }

    #[test]
    fn whitespace_trimming_default() {
        let doc = parse("<r>\n  <a> hi </a>\n</r>").unwrap();
        assert_eq!(doc.to_xml(), "<r><a>hi</a></r>");
    }

    #[test]
    fn whitespace_preserved_when_asked() {
        let doc = parse_with("<r> <a>hi</a> </r>", &ParseOptions { trim_whitespace: false }).unwrap();
        let root = doc.root();
        assert_eq!(doc.children(root).unwrap().len(), 3);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched end tag"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>x").is_err());
    }

    #[test]
    fn missing_close_rejected() {
        assert!(parse("<a><b/>").is_err());
        assert!(parse("<a").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(parse(r#"<a x="<"/>"#).is_err());
    }

    #[test]
    fn namespaced_names() {
        let doc = parse(r#"<axml:sc mode="replace"><axml:params/></axml:sc>"#).unwrap();
        let root = doc.root();
        assert!(doc.name(root).unwrap().is(Some("axml"), "sc"));
        let kids = doc.children(root).unwrap();
        assert!(doc.name(kids[0]).unwrap().is(Some("axml"), "params"));
    }

    #[test]
    fn atp_list_snippet_from_paper() {
        let src = r#"<?xml version = "1.0" encoding = "UTF-8"?>
<ATPList date = "18042005">
     <player rank = "1">
          <name>
               <firstname>Roger</firstname>
               <lastname>Federer</lastname>
          </name>
          <citizenship>Swiss</citizenship>
          <axml:sc mode = "replace" serviceNameSpace = "getPoints" serviceURL = "http://ap2" methodName = "getPoints">
               <axml:params>
                    <axml:param name = "name"><axml:value>Roger Federer</axml:value></axml:param>
               </axml:params>
               <points>475</points>
          </axml:sc>
     </player>
</ATPList>"#;
        let doc = parse(src).unwrap();
        let root = doc.root();
        assert_eq!(doc.name(root).unwrap().local, "ATPList");
        assert_eq!(doc.attr(root, "date"), Some("18042005"));
        let player = doc.first_child_element(root, "player").unwrap();
        let sc = doc.first_child_element(player, "axml:sc").unwrap();
        assert_eq!(doc.attr(sc, "mode"), Some("replace"));
        assert_eq!(doc.attr(sc, "methodName"), Some("getPoints"));
        doc.check_consistency().unwrap();
    }

    #[test]
    fn parse_fragment_multiple_items() {
        let frags = parse_fragment("<a>1</a>mid<b x='2'/>").unwrap();
        assert_eq!(frags.len(), 3);
    }

    #[test]
    fn parse_fragment_empty() {
        assert_eq!(parse_fragment("").unwrap().len(), 0);
    }

    #[test]
    fn line_and_column_in_errors() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.line, 3, "{err}");
    }

    #[test]
    fn spaces_around_attr_equals() {
        let doc = parse(r#"<r a = "1"/>"#).unwrap();
        assert_eq!(doc.attr(doc.root(), "a"), Some("1"));
    }
}
