//! Property-based tests for the XML substrate.
//!
//! Invariants (DESIGN.md §6):
//! - parse ∘ serialize = id on the fragment value domain;
//! - instantiate ∘ extract = id;
//! - arbitrary edit sequences keep the arena internally consistent and
//!   node ids stable;
//! - canonical equivalence is reflexive and invariant under comment noise.

use axml_xml::{canonical, equivalent_ordered, equivalent_unordered, Document, Fragment, NodeId, QName};
use proptest::prelude::*;

/// Strategy for XML names (restricted alphabet keeps shrinking readable).
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,7}"
}

/// Strategy for text content, including characters that require escaping.
fn text_strategy() -> impl Strategy<Value = String> {
    // Avoid strings that are pure whitespace (parser trims those) and avoid
    // the control characters the serializer does not round-trip.
    "[ -~]{1,20}".prop_map(|s| s.trim().to_string()).prop_filter("non-empty after trim", |s| !s.is_empty())
}

fn attr_strategy() -> impl Strategy<Value = (QName, String)> {
    (name_strategy(), text_strategy()).prop_map(|(n, v)| (QName::local(n), v))
}

/// Recursive fragment strategy.
fn fragment_strategy() -> impl Strategy<Value = Fragment> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Fragment::Text),
        (name_strategy(), prop::collection::vec(attr_strategy(), 0..3)).prop_map(|(n, mut attrs)| {
            attrs.sort();
            attrs.dedup_by(|a, b| a.0 == b.0);
            Fragment::Element { name: QName::local(n), attrs, children: vec![] }
        }),
    ];
    leaf.prop_recursive(4, 64, 5, |inner| {
        (name_strategy(), prop::collection::vec(attr_strategy(), 0..3), prop::collection::vec(inner, 0..5)).prop_map(
            |(n, mut attrs, children)| {
                attrs.sort();
                attrs.dedup_by(|a, b| a.0 == b.0);
                // Adjacent text nodes are merged by the parser; normalize the
                // generated value so round-trips are comparable.
                let mut merged: Vec<Fragment> = Vec::new();
                for c in children {
                    match (merged.last_mut(), c) {
                        (Some(Fragment::Text(prev)), Fragment::Text(t)) => prev.push_str(&t),
                        (_, c) => merged.push(c),
                    }
                }
                Fragment::Element { name: QName::local(n), attrs, children: merged }
            },
        )
    })
}

/// Element-rooted fragment (documents need an element root).
fn element_strategy() -> impl Strategy<Value = Fragment> {
    fragment_strategy().prop_filter("element root", |f| matches!(f, Fragment::Element { .. }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_serialize_roundtrip(frag in element_strategy()) {
        let xml = frag.to_xml();
        let parsed = Fragment::parse_one(&xml).unwrap();
        // Trimming: the parser trims leading/trailing whitespace of text
        // nodes, so compare canonically.
        prop_assert!(canonical::fragments_equivalent_ordered(&frag, &parsed),
            "frag={frag:?} xml={xml} parsed={parsed:?}");
    }

    #[test]
    fn instantiate_extract_roundtrip(frag in fragment_strategy()) {
        let mut doc = Document::new("host");
        let root = doc.root();
        let id = doc.append_fragment(root, &frag).unwrap();
        let back = doc.extract_fragment(id).unwrap();
        prop_assert_eq!(&back, &frag);
        doc.check_consistency().unwrap();
    }

    #[test]
    fn document_roundtrip_through_text(frag in element_strategy()) {
        let mut doc = Document::new("host");
        let root = doc.root();
        doc.append_fragment(root, &frag).unwrap();
        let xml = doc.to_xml();
        let doc2 = Document::parse(&xml).unwrap();
        prop_assert!(equivalent_ordered(&doc, &doc2), "xml={xml}");
        prop_assert!(equivalent_unordered(&doc, &doc2));
    }

    #[test]
    fn random_edit_sequences_keep_consistency(
        frags in prop::collection::vec(fragment_strategy(), 1..8),
        ops in prop::collection::vec(0u8..4, 1..30),
        seeds in prop::collection::vec(any::<u32>(), 30),
    ) {
        let mut doc = Document::new("r");
        let root = doc.root();
        for f in &frags {
            doc.append_fragment(root, f).unwrap();
        }
        let mut live: Vec<NodeId> = doc.all_nodes().collect();
        for (i, op) in ops.iter().enumerate() {
            let seed = seeds[i % seeds.len()] as usize;
            if live.is_empty() { break; }
            let target = live[seed % live.len()];
            match op {
                0 => {
                    // Append a fresh element under an element target.
                    if doc.contains(target) && doc.name(target).is_ok() {
                        let e = doc.create_element(format!("e{i}"));
                        doc.append_child(target, e).unwrap();
                    }
                }
                1 => {
                    // Delete the target subtree (root excluded).
                    if doc.contains(target) && target != root {
                        doc.delete(target).unwrap();
                    }
                }
                2 => {
                    // Set an attribute if it's an element.
                    if doc.contains(target) && doc.name(target).is_ok() {
                        doc.set_attr(target, "k", format!("{i}")).unwrap();
                    }
                }
                _ => {
                    // Detach + reinsert at front of root.
                    if doc.contains(target) && target != root
                        && doc.parent(target).ok().flatten().is_some() {
                        doc.detach(target).unwrap();
                        doc.insert_child(root, 0, target).unwrap();
                    }
                }
            }
            doc.check_consistency().unwrap();
            live = doc.all_nodes().collect();
        }
        // All live ids still resolve; all remembered-but-deleted ids are stale.
        for id in &live {
            prop_assert!(doc.contains(*id));
        }
    }

    #[test]
    fn comment_noise_does_not_affect_equivalence(frag in element_strategy()) {
        let mut a = Document::new("host");
        let ra = a.root();
        a.append_fragment(ra, &frag).unwrap();
        let mut b = Document::new("host");
        let rb = b.root();
        let c1 = b.create_comment("noise");
        b.append_child(rb, c1).unwrap();
        b.append_fragment(rb, &frag).unwrap();
        let c2 = b.create_comment("more noise");
        b.append_child(rb, c2).unwrap();
        prop_assert!(equivalent_ordered(&a, &b));
    }

    #[test]
    fn subtree_size_matches_fragment_node_count(frag in fragment_strategy()) {
        let mut doc = Document::new("host");
        let root = doc.root();
        let id = doc.append_fragment(root, &frag).unwrap();
        prop_assert_eq!(doc.subtree_size(id), frag.node_count());
    }

    #[test]
    fn remove_then_restore_is_identity(frag in element_strategy(), extra in element_strategy()) {
        let mut doc = Document::new("host");
        let root = doc.root();
        doc.append_fragment(root, &extra).unwrap();
        let id = doc.append_fragment(root, &frag).unwrap();
        doc.append_fragment(root, &extra).unwrap();
        let before = doc.to_xml();
        let (captured, parent, pos) = doc.remove_to_fragment(id).unwrap();
        prop_assert_eq!(&captured, &frag);
        doc.insert_fragment(parent, pos, &captured).unwrap();
        prop_assert_eq!(doc.to_xml(), before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics: arbitrary input yields Ok or a located
    /// error, and successful parses produce consistent arenas.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        match Document::parse(&input) {
            Ok(doc) => {
                doc.check_consistency().unwrap();
                // And what we serialize re-parses.
                let again = Document::parse(&doc.to_xml()).unwrap();
                prop_assert!(equivalent_ordered(&doc, &again));
            }
            Err(e) => {
                prop_assert!(e.line >= 1);
                prop_assert!(e.column >= 1);
            }
        }
    }

    /// Near-XML input (random tags/text glued together) never panics.
    #[test]
    fn parser_never_panics_on_tag_soup(
        pieces in prop::collection::vec(
            prop_oneof![
                "[a-z]{1,4}".prop_map(|t| format!("<{t}>")),
                "[a-z]{1,4}".prop_map(|t| format!("</{t}>")),
                "[a-z]{1,4}".prop_map(|t| format!("<{t}/>")),
                Just("<![CDATA[".to_string()),
                Just("]]>".to_string()),
                Just("<!--".to_string()),
                Just("-->".to_string()),
                Just("&amp;".to_string()),
                Just("&#x41;".to_string()),
                Just("&bogus;".to_string()),
                "[ -~]{0,8}".prop_map(|s| s),
            ],
            0..24,
        )
    ) {
        let input: String = pieces.concat();
        let _ = Document::parse(&input); // must not panic
        let _ = Fragment::parse_all(&input); // must not panic
    }
}
