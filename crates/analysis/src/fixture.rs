//! A deliberately-broken fixture exercising every rule family: a
//! malformed scenario, a corrupt effect log with an unsound compensation
//! bundle, and a corrupted active-peer list. `axml-analyze --demo-broken`
//! runs the full rule set over it and must exit nonzero.

use axml_core::chain::{ActiveList, ChainNode};
use axml_core::scenarios::ScenarioBuilder;
use axml_p2p::PeerId;
use axml_query::{Effect, Locator, NodePath, UpdateAction};
use axml_xml::{Document, Fragment};

/// Everything the demo analyzes.
pub struct BrokenFixture {
    /// A scenario with an unreachable handler, a retry that cannot
    /// succeed, dead edges, and dangling declarations.
    pub builder: ScenarioBuilder,
    /// A corrupt effect log (truncated delete, insert into a deleted
    /// subtree).
    pub effects: Vec<Effect>,
    /// A compensation bundle that does not invert the log.
    pub compensation: Vec<UpdateAction>,
    /// An active list with a duplicated peer and an orphaned entry.
    pub chain: ActiveList,
}

/// Builds the fixture. Every field is intentionally wrong; see the tests
/// for the exact rule ids each part trips.
pub fn broken() -> BrokenFixture {
    // (7, 8) is disconnected from the origin (W001); the fault at 2 makes
    // the catchAll retry on (1, 2) futile without a replica (W003); the
    // named catch on (2, 3) can never fire (W002); peer 99 is not in the
    // scenario (W004); super 42 is dangling (W005).
    let mut builder = ScenarioBuilder::new(1, &[(1, 2), (2, 3), (7, 8)])
        .fault_at(2)
        .retry_handler(1, 2, None, 2, 3)
        .retry_handler(2, 3, Some("NoSuchFaultEver"), 1, 1)
        .disconnect(10, 99);
    builder.supers.push(42);

    // The delete logged no content (C001) and the later insert lands
    // inside the subtree the first effect removed (C003).
    let any_node = Document::parse("<d/>").expect("static").root();
    let effects = vec![
        Effect::Deleted { fragment: Fragment::Text(String::new()), parent_path: NodePath(vec![0]), position: 0 },
        Effect::Inserted { node: any_node, path: NodePath(vec![0, 0, 1]), fragment: Fragment::elem_text("ghost", "y") },
    ];
    // One action for two effects (C002), located by query instead of a
    // structural address (C004), carrying no data (C005).
    let compensation = vec![UpdateAction::insert(Locator::parse("Select v/slot from v in d").expect("static"), vec![])];

    // AP2 appears twice (L001/L002), hiding the super marker the second
    // occurrence carries (L003); AP9 is never invoked by the scenario
    // (L005).
    let chain = ActiveList {
        root: ChainNode {
            peer: PeerId(1),
            is_super: false,
            children: vec![
                ChainNode::leaf(PeerId(2), false),
                ChainNode { peer: PeerId(2), is_super: true, children: vec![ChainNode::leaf(PeerId(9), false)] },
            ],
        },
    };
    BrokenFixture { builder, effects, compensation, chain }
}
