//! A deliberately-broken fixture exercising every rule family: a
//! malformed scenario, a corrupt effect log with an unsound compensation
//! bundle, and a corrupted active-peer list. `axml-analyze --demo-broken`
//! runs the full rule set over it and must exit nonzero.

use axml_core::chain::{ActiveList, ChainNode};
use axml_core::compensate::compensation_for_effects;
use axml_core::scenarios::ScenarioBuilder;
use axml_p2p::PeerId;
use axml_query::{Effect, Locator, NodePath, UpdateAction};
use axml_xml::{Document, Fragment};

/// Everything the demo analyzes.
pub struct BrokenFixture {
    /// A scenario with an unreachable handler, a retry that cannot
    /// succeed, dead edges, dangling declarations, a malformed handler,
    /// and a shadowed handler.
    pub builder: ScenarioBuilder,
    /// A corrupt effect log (truncated delete, insert into a deleted
    /// subtree).
    pub effects: Vec<Effect>,
    /// A compensation bundle that does not invert the log.
    pub compensation: Vec<UpdateAction>,
    /// A well-formed sibling-delete log whose compensation below is the
    /// right inverses applied in the wrong order.
    pub reordered_effects: Vec<Effect>,
    /// The correct inverses of [`Self::reordered_effects`], reversed —
    /// a non-commuting reordering.
    pub reordered_compensation: Vec<UpdateAction>,
    /// An active list with a duplicated peer and an orphaned entry.
    pub chain: ActiveList,
    /// A stored active-list notation string that does not parse.
    pub notation: String,
}

/// Builds the fixture. Every field is intentionally wrong; see the tests
/// for the exact rule ids each part trips.
pub fn broken() -> BrokenFixture {
    // (7, 8) is disconnected from the origin (W001); the fault at 2 makes
    // the catchAll retry on (1, 2) futile without a replica (W003); the
    // named catch on (2, 3) can never fire (W002); peer 99 is not in the
    // scenario (W004); super 42 is dangling (W005).
    // The named catch declared after the catchAll on (1, 2) can never be
    // consulted (W007); the broken handler XML on (7, 8) makes peer 7's
    // generated document unparseable (W006).
    let mut builder = ScenarioBuilder::new(1, &[(1, 2), (2, 3), (7, 8)])
        .fault_at(2)
        .retry_handler(1, 2, None, 2, 3)
        .retry_handler(1, 2, Some("ExecutionFault"), 1, 1)
        .retry_handler(2, 3, Some("NoSuchFaultEver"), 1, 1)
        .disconnect(10, 99);
    builder.supers.push(42);
    builder.handlers.push((7, 8, "<axml:catchAll><unclosed></axml:catchAll>".into()));

    // The delete logged no content (C001) and the later insert lands
    // inside the subtree the first effect removed (C003).
    let any_node = Document::parse("<d/>").expect("static").root();
    let effects = vec![
        Effect::Deleted { fragment: Fragment::Text(String::new()), parent_path: NodePath(vec![0]), position: 0 },
        Effect::Inserted { node: any_node, path: NodePath(vec![0, 0, 1]), fragment: Fragment::elem_text("ghost", "y") },
    ];
    // One action for two effects (C002), located by query instead of a
    // structural address (C004), carrying no data (C005).
    let compensation = vec![UpdateAction::insert(Locator::parse("Select v/slot from v in d").expect("static"), vec![])];

    // Two deletes at sibling slots: their inverses only telescope in
    // reverse log order — swapping them shifts the second slot (C006).
    let reordered_effects = vec![
        Effect::Deleted { fragment: Fragment::elem_text("a", "1"), parent_path: NodePath(vec![]), position: 1 },
        Effect::Deleted { fragment: Fragment::elem_text("b", "2"), parent_path: NodePath(vec![]), position: 3 },
    ];
    let mut reordered_compensation = compensation_for_effects(&reordered_effects);
    reordered_compensation.reverse();

    // AP2 appears twice (L001/L002), hiding the super marker the second
    // occurrence carries (L003); AP9 is never invoked by the scenario
    // (L005).
    let chain = ActiveList {
        root: ChainNode {
            peer: PeerId(1),
            is_super: false,
            children: vec![
                ChainNode::leaf(PeerId(2), false),
                ChainNode { peer: PeerId(2), is_super: true, children: vec![ChainNode::leaf(PeerId(9), false)] },
            ],
        },
    };
    // A hand-edited rendering that lost its closing brackets (L004).
    let notation = "[AP1 → [AP2] || [AP2".to_string();
    BrokenFixture { builder, effects, compensation, reordered_effects, reordered_compensation, chain, notation }
}
