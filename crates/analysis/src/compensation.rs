//! Compensation-soundness rules (`C…`) — §3.1 of the paper.
//!
//! The paper's recovery builds compensation *from the log*: every delete
//! must have logged the removed subtree, every insert its structural
//! address, and the inverses must be applied in reverse order so the
//! composition telescopes back to the original document. These rules
//! audit effect logs and compensation bundles symbolically — without a
//! document — so corrupt journals and hand-built (or filtered,
//! re-ordered, shipped-across-peers) bundles are caught before anyone
//! tries to run them.
//!
//! | Rule | Finding |
//! |------|---------|
//! | C001 | delete effect logs no subtree content |
//! | C002 | compensation does not telescope (truncated / extra / wrong / round-trip failure) |
//! | C003 | insert effect targets a previously-deleted subtree (corrupt log) |
//! | C004 | compensation locator is a query, not a structural address |
//! | C005 | compensation insert/replace carries no data |
//! | C006 | reordered compensation actions do not commute |

use crate::diag::Diagnostic;
use axml_core::compensate::{apply_compensation, compensation_for_effects};
use axml_query::{ActionType, Effect, InsertPos, Locator, NodePath, UpdateAction};
use axml_xml::{Document, Fragment};

/// The structural address an update action operates on, when it has one.
fn action_root(a: &UpdateAction) -> Option<NodePath> {
    match (&a.location, a.insert_pos) {
        (Locator::Node(p), InsertPos::At(i)) if a.ty == ActionType::Insert => Some(p.child(i)),
        (Locator::Node(p), _) => Some(p.clone()),
        _ => None,
    }
}

/// Whether operations at `a` and `b` interfere — i.e. running them in the
/// wrong order can change the outcome. True when one address contains the
/// other, or when one is a sibling-level address at or before the other's
/// branch point (insert/delete there shifts the other's child index).
fn paths_interfere(a: &NodePath, b: &NodePath) -> bool {
    let k = a.0.iter().zip(&b.0).take_while(|(x, y)| x == y).count();
    if k == a.0.len() || k == b.0.len() {
        return true; // equal, or one contains the other
    }
    (a.0.len() == k + 1 && a.0[k] <= b.0[k]) || (b.0.len() == k + 1 && b.0[k] <= a.0[k])
}

/// Whether a logged "deleted subtree" carries no restorable content — the
/// paper requires "the results of the `<location>` queries of the delete
/// operations" to be logged; an empty placeholder means they were not.
fn fragment_is_empty(f: &Fragment) -> bool {
    match f {
        Fragment::Text(t) | Fragment::Cdata(t) => t.is_empty(),
        _ => false,
    }
}

/// Audits an effect log on its own: can a sound compensation even be
/// built from it? Flags C001 (delete without logged subtree) and C003
/// (insert recorded inside a subtree an earlier effect deleted — a log
/// no replay of real operations can produce).
pub fn analyze_effect_log(effects: &[Effect]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Roots of deleted subtrees not since re-inserted at the same slot.
    let mut dead: Vec<NodePath> = Vec::new();
    for (i, e) in effects.iter().enumerate() {
        match e {
            Effect::Deleted { fragment, parent_path, position } => {
                if fragment_is_empty(fragment) {
                    out.push(Diagnostic::error(
                        "C001",
                        format!("effect #{i}"),
                        format!(
                            "delete at {} logs no subtree content; the compensating insert would restore nothing",
                            parent_path.child(*position)
                        ),
                        "log the delete's <location> query results (the removed fragment) with the effect",
                    ));
                }
                dead.push(parent_path.child(*position));
            }
            Effect::Inserted { path, .. } => {
                if let Some(d) = dead.iter().find(|d| d.is_ancestor_of(path)) {
                    out.push(Diagnostic::error(
                        "C003",
                        format!("effect #{i}"),
                        format!(
                            "insert at {path} lands inside the subtree deleted at {d}; the log is corrupt or truncated"
                        ),
                        "re-derive the log from the journal; effects must be recorded in application order",
                    ));
                }
                dead.retain(|d| d != path);
            }
        }
    }
    out
}

/// Audits a compensation bundle against the effect log it claims to
/// invert. A sound bundle is the reverse-order inverse of the log
/// (`compensation_for_effects`), which telescopes: each action cancels
/// the last surviving effect. Deviations are flagged as C002 (missing,
/// extra, or wrong actions), C004 (query locators — not peer-independent),
/// C005 (insert/replace without data), and C006 (a reordering whose
/// out-of-order pairs touch interfering paths, so the composition no
/// longer cancels).
pub fn analyze_compensation(effects: &[Effect], actions: &[UpdateAction]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, a) in actions.iter().enumerate() {
        match &a.location {
            Locator::Node(_) | Locator::Nodes(_) => {}
            other => out.push(Diagnostic::warning(
                "C004",
                format!("action #{i}"),
                format!(
                    "compensation locates its target with the query `{}` instead of a structural address",
                    other.to_text()
                ),
                "use Locator::Node/Nodes so the action is replayable on any replica (peer-independent compensation)",
            )),
        }
        if matches!(a.ty, ActionType::Insert | ActionType::Replace) && a.data.is_empty() {
            out.push(Diagnostic::error(
                "C005",
                format!("action #{i}"),
                format!("{:?} compensation carries no data; it cannot restore anything", a.ty),
                "carry the logged fragment as the action's <data>",
            ));
        }
    }
    let expected = compensation_for_effects(effects);
    if actions == expected.as_slice() {
        return out;
    }
    // Match each provided action to an unused expected inverse.
    let mut used = vec![false; expected.len()];
    let mut perm: Vec<Option<usize>> = Vec::with_capacity(actions.len());
    for a in actions {
        let slot = expected.iter().enumerate().find(|(j, e)| !used[*j] && *e == a).map(|(j, _)| j);
        if let Some(j) = slot {
            used[j] = true;
        }
        perm.push(slot);
    }
    let aliens = perm.iter().filter(|p| p.is_none()).count();
    let missing = used.iter().filter(|u| !**u).count();
    if aliens > 0 || missing > 0 {
        let detail = if actions.len() < expected.len() {
            format!("{} action(s) for {} effect(s) — the bundle is truncated", actions.len(), expected.len())
        } else if actions.len() > expected.len() {
            format!("{} action(s) for {} effect(s) — the bundle has extras", actions.len(), expected.len())
        } else {
            format!("{aliens} action(s) are not the inverse of any logged effect")
        };
        out.push(Diagnostic::error(
            "C002",
            "bundle".to_string(),
            format!("compensation does not telescope over the log: {detail}"),
            "rebuild the bundle with compensation_for_effects (reverse-order inverses of the log)",
        ));
        return out;
    }
    // Pure permutation of the correct inverses: harmless iff every
    // out-of-order pair operates on non-interfering paths.
    for i in 0..perm.len() {
        for j in i + 1..perm.len() {
            let (Some(pi), Some(pj)) = (perm[i], perm[j]) else { continue };
            if pi <= pj {
                continue;
            }
            let (Some(a), Some(b)) = (action_root(&actions[i]), action_root(&actions[j])) else {
                continue;
            };
            if paths_interfere(&a, &b) {
                out.push(Diagnostic::error(
                    "C006",
                    format!("actions #{i} and #{j}"),
                    format!(
                        "inverses applied out of reverse-log order on interfering paths {a} and {b}; they do not commute"
                    ),
                    "apply inverses strictly in reverse order of the logged effects",
                ));
            }
        }
    }
    out
}

/// Concrete round-trip probe: applies `action` to a copy of `doc`, audits
/// the real effect log, then builds and applies the compensation and
/// checks the document is byte-identical to where it started (the §3.1
/// identity). An inapplicable probe (empty location) yields no findings.
pub fn analyze_action_roundtrip(doc: &Document, action: &UpdateAction) -> Vec<Diagnostic> {
    let before = doc.to_xml();
    let mut work = match Document::parse(&before) {
        Ok(d) => d,
        Err(e) => {
            return vec![Diagnostic::error(
                "C002",
                "probe".to_string(),
                format!("probe document does not re-parse: {e}"),
                "fix the document serialization",
            )]
        }
    };
    let Ok(report) = action.apply(&mut work) else { return Vec::new() };
    let mut out = analyze_effect_log(&report.effects);
    let comp = compensation_for_effects(&report.effects);
    out.extend(analyze_compensation(&report.effects, &comp));
    match apply_compensation(&mut work, &comp) {
        Ok(_) if work.to_xml() == before => {}
        Ok(_) => out.push(Diagnostic::error(
            "C002",
            "probe".to_string(),
            "compensation applied cleanly but did not restore the original document".to_string(),
            "log effects at application granularity so inverses telescope",
        )),
        Err(e) => out.push(Diagnostic::error(
            "C002",
            "probe".to_string(),
            format!("compensation failed to apply: {e}"),
            "log structural addresses that remain valid at undo time",
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::Locator;

    fn feasible_log() -> (Document, Vec<Effect>) {
        let mut doc = Document::parse("<d><a>1</a><b>2</b><c>3</c></d>").unwrap();
        let mut effects = Vec::new();
        for action in [
            UpdateAction::delete(Locator::Node(NodePath(vec![1]))),
            UpdateAction::insert_at(
                Locator::Node(NodePath(vec![])),
                vec![Fragment::elem_text("x", "new")],
                InsertPos::At(1),
            ),
            UpdateAction::replace(Locator::Node(NodePath(vec![0])), vec![Fragment::elem_text("a2", "changed")]),
        ] {
            effects.extend(action.apply(&mut doc).unwrap().effects);
        }
        (doc, effects)
    }

    #[test]
    fn feasible_logs_and_their_inverses_are_clean() {
        let (_, effects) = feasible_log();
        assert!(analyze_effect_log(&effects).is_empty());
        let comp = compensation_for_effects(&effects);
        assert!(analyze_compensation(&effects, &comp).is_empty());
    }

    #[test]
    fn c001_empty_deleted_fragment() {
        let effects = vec![Effect::Deleted {
            fragment: Fragment::Text(String::new()),
            parent_path: NodePath(vec![0]),
            position: 2,
        }];
        let diags = analyze_effect_log(&effects);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "C001");
    }

    #[test]
    fn c003_insert_inside_deleted_subtree() {
        let effects = vec![
            Effect::Deleted { fragment: Fragment::elem_text("gone", "x"), parent_path: NodePath(vec![0]), position: 0 },
            Effect::Inserted {
                node: Document::parse("<d/>").unwrap().root(),
                path: NodePath(vec![0, 0, 1]),
                fragment: Fragment::elem_text("ghost", "y"),
            },
        ];
        let diags = analyze_effect_log(&effects);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "C003");
        // Re-inserting exactly at the deleted slot resurrects it: clean.
        let effects = vec![
            Effect::Deleted { fragment: Fragment::elem_text("gone", "x"), parent_path: NodePath(vec![0]), position: 0 },
            Effect::Inserted {
                node: Document::parse("<d/>").unwrap().root(),
                path: NodePath(vec![0, 0]),
                fragment: Fragment::elem_text("back", "y"),
            },
            Effect::Inserted {
                node: Document::parse("<d/>").unwrap().root(),
                path: NodePath(vec![0, 0, 1]),
                fragment: Fragment::elem_text("child", "z"),
            },
        ];
        assert!(analyze_effect_log(&effects).is_empty());
    }

    #[test]
    fn c002_truncated_and_extra_bundles() {
        let (_, effects) = feasible_log();
        let full = compensation_for_effects(&effects);
        let truncated = &full[..full.len() - 1];
        let diags = analyze_compensation(&effects, truncated);
        assert!(diags.iter().any(|d| d.rule == "C002" && d.message.contains("truncated")), "{diags:?}");
        let mut extra = full.clone();
        extra.push(UpdateAction::delete(Locator::Node(NodePath(vec![9]))));
        let diags = analyze_compensation(&effects, &extra);
        assert!(diags.iter().any(|d| d.rule == "C002" && d.message.contains("extras")), "{diags:?}");
    }

    #[test]
    fn c004_c005_shape_checks() {
        let (_, effects) = feasible_log();
        let bundle = vec![UpdateAction::insert(Locator::parse("Select v/slot from v in d").unwrap(), vec![])];
        let diags = analyze_compensation(&effects, &bundle);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"C004"), "{diags:?}");
        assert!(rules.contains(&"C005"), "{diags:?}");
        assert!(rules.contains(&"C002"), "{diags:?}");
    }

    #[test]
    fn c006_interfering_reorder_flagged_commuting_reorder_allowed() {
        // Two deletes at sibling slots 1 and 3 of the same parent: their
        // inverses (inserts at 3-then-1... reversed) interfere when
        // swapped, because inserting at slot 1 first shifts slot 3.
        let effects = vec![
            Effect::Deleted { fragment: Fragment::elem_text("a", "1"), parent_path: NodePath(vec![]), position: 1 },
            Effect::Deleted { fragment: Fragment::elem_text("b", "2"), parent_path: NodePath(vec![]), position: 3 },
        ];
        let mut swapped = compensation_for_effects(&effects);
        swapped.reverse();
        let diags = analyze_compensation(&effects, &swapped);
        assert!(diags.iter().any(|d| d.rule == "C006"), "{diags:?}");
        // Deletes in disjoint subtrees commute: the swap is accepted.
        let effects = vec![
            Effect::Deleted { fragment: Fragment::elem_text("a", "1"), parent_path: NodePath(vec![0]), position: 0 },
            Effect::Deleted { fragment: Fragment::elem_text("b", "2"), parent_path: NodePath(vec![5]), position: 0 },
        ];
        let mut swapped = compensation_for_effects(&effects);
        swapped.reverse();
        assert!(analyze_compensation(&effects, &swapped).is_empty());
    }

    #[test]
    fn roundtrip_probe_is_clean_on_real_documents() {
        let doc = Document::parse("<d><slot>initial</slot><out>base</out></d>").unwrap();
        for action in [
            UpdateAction::delete(Locator::Node(NodePath(vec![0]))),
            UpdateAction::replace(Locator::Node(NodePath(vec![1])), vec![Fragment::elem_text("probe", "x")]),
            UpdateAction::insert_at(
                Locator::Node(NodePath(vec![])),
                vec![Fragment::elem_text("probe", "y")],
                InsertPos::At(0),
            ),
        ] {
            let diags = analyze_action_roundtrip(&doc, &action);
            assert!(diags.is_empty(), "{action:?}: {diags:?}");
        }
    }
}
