//! Static verifier CLI. Runs the C/W/L rule sets over the built-in
//! scenarios (or the deliberately-broken fixture) and exits nonzero when
//! anything is found.
//!
//! ```text
//! axml-analyze [--all-scenarios] [--scenario NAME] [--demo-broken] [--json]
//! ```

#![forbid(unsafe_code)]

use axml_analysis::{analyze_all, analyze_broken_fixture, Report};
use axml_core::scenarios::ScenarioBuilder;
use std::process::ExitCode;

/// The scenarios `--all-scenarios` audits: the paper figures plus the
/// recovery variants the test suite runs (all expected clean).
fn builtin_scenarios() -> Vec<(&'static str, ScenarioBuilder)> {
    let (with_replica, _r) = ScenarioBuilder::fig1().fault_at(5).with_replica(5);
    vec![
        ("fig1", ScenarioBuilder::fig1()),
        ("fig2", ScenarioBuilder::fig2()),
        ("fig1-substitute", ScenarioBuilder::fig1().fault_at(5).substitute_handler(3, 5, None)),
        ("fig1-retry-replica", with_replica.retry_handler(3, 5, None, 2, 3)),
        ("fig2-leaf-disconnect", ScenarioBuilder::fig2().disconnect(40, 6)),
    ]
}

fn usage() -> ! {
    eprintln!(
        "usage: axml-analyze [--all-scenarios] [--scenario NAME] [--demo-broken] [--json]\n\
         \n\
         --all-scenarios   audit every built-in scenario (default)\n\
         --scenario NAME   audit one built-in scenario (fig1, fig2, ...)\n\
         --demo-broken     audit the deliberately-broken fixture\n\
         --json            emit the report as JSON instead of text"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut json = false;
    let mut demo_broken = false;
    let mut selected: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--demo-broken" => demo_broken = true,
            "--all-scenarios" => selected = None,
            "--scenario" => match args.next() {
                Some(name) => selected = Some(name),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let report = if demo_broken {
        analyze_broken_fixture()
    } else {
        let scenarios = builtin_scenarios();
        if let Some(name) = &selected {
            if !scenarios.iter().any(|(n, _)| n == name) {
                let names: Vec<&str> = scenarios.iter().map(|(n, _)| *n).collect();
                eprintln!("unknown scenario `{name}`; available: {names:?}");
                return ExitCode::from(2);
            }
        }
        let mut report = Report::default();
        for (name, builder) in scenarios {
            if selected.as_deref().is_some_and(|s| s != name) {
                continue;
            }
            let sub = analyze_all(&builder);
            report.extend_with_context(name, sub.diagnostics);
        }
        report
    };

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
