//! Scenario well-formedness rules (`W…`) — §3.2's recovery machinery
//! only works over scenarios whose declared structure makes sense.
//!
//! | Rule | Finding |
//! |------|---------|
//! | W001 | invocation graph is not a tree rooted at the origin |
//! | W002 | a named catch handler can never fire |
//! | W003 | a retry handler retries a permanently-failing subtree with no replica |
//! | W004 | a scheduled disconnect is a no-op |
//! | W005 | a super/replica/handler/fault declaration references nothing in the scenario |
//! | W006 | a peer's generated document (or an attached handler) does not parse |
//! | W007 | a handler is shadowed by an earlier catchAll or same-name catch on the same call |

use crate::diag::Diagnostic;
use axml_core::scenarios::ScenarioBuilder;
use axml_doc::{HandlerAction, ServiceCall};
use axml_xml::Document;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Fault names some component of the stack actually raises; a
/// `axml:catch` for anything else is dead code (rule W002). Public so
/// generators producing lint-clean scenarios *by construction* (the
/// chaos harness's `gen` module) draw from the same list the linter
/// checks against — the two can never drift apart.
pub const RAISABLE_FAULTS: &[&str] =
    &["PeerUnreachable", "NoSuchService", "ExecutionFault", "InjectedFault", "TxnResolved", "IsolationConflict"];

/// The peers of the invocation tree proper (edges + origin, no replicas).
fn tree_peers(b: &ScenarioBuilder) -> BTreeSet<u32> {
    b.edges.iter().flat_map(|(p, c)| [*p, *c]).chain([b.origin]).collect()
}

/// `child` and everything below it, following edges (cycle-safe).
fn subtree_of(b: &ScenarioBuilder, child: u32) -> BTreeSet<u32> {
    let mut seen = BTreeSet::from([child]);
    let mut queue = VecDeque::from([child]);
    while let Some(p) = queue.pop_front() {
        for c in b.children_of(p) {
            if seen.insert(c) {
                queue.push_back(c);
            }
        }
    }
    seen
}

/// The child peer a generated `axml:sc` targets (`methodName="S{child}"`).
fn call_target(call: &ServiceCall) -> Option<u32> {
    call.method.strip_prefix('S').and_then(|s| s.parse().ok())
}

/// Runs every W-rule over a scenario description.
pub fn analyze_scenario(b: &ScenarioBuilder) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let tree = tree_peers(b);
    let all = b.peers();

    // --- W001: the invocation graph must be a tree rooted at the origin.
    let mut parents: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut seen_edges = BTreeSet::new();
    for &(p, c) in &b.edges {
        if p == c {
            out.push(Diagnostic::error(
                "W001",
                format!("edge ({p}, {c})"),
                "self-invocation edge: a peer cannot be its own provider in the invocation tree",
                "remove the self-loop",
            ));
            continue;
        }
        if !seen_edges.insert((p, c)) {
            out.push(Diagnostic::error(
                "W001",
                format!("edge ({p}, {c})"),
                "duplicate invocation edge",
                "declare each invocation once",
            ));
            continue;
        }
        parents.entry(c).or_default().push(p);
    }
    if let Some(ps) = parents.get(&b.origin) {
        out.push(Diagnostic::error(
            "W001",
            format!("peer {}", b.origin),
            format!("the origin is invoked by {ps:?}; the root of the invocation tree must have no parent"),
            "submit the transaction at the actual tree root",
        ));
    }
    for (c, ps) in &parents {
        if ps.len() > 1 {
            out.push(Diagnostic::error(
                "W001",
                format!("peer {c}"),
                format!("invoked by multiple parents {ps:?}; the active-peer list is a tree"),
                "give each peer a single invoking parent",
            ));
        }
    }
    let reachable = subtree_of(b, b.origin);
    for &p in &tree {
        if !reachable.contains(&p) {
            out.push(Diagnostic::error(
                "W001",
                format!("peer {p}"),
                format!("not reachable from the origin {}; it will never join the transaction", b.origin),
                "connect the peer to the tree or drop its edges",
            ));
        }
    }

    // --- W005: declarations must reference things that exist.
    for &s in &b.supers {
        if !all.contains(&s) {
            out.push(Diagnostic::warning(
                "W005",
                format!("super {s}"),
                "super marker references a peer absent from the scenario",
                "mark an actual participant (or remove the marker)",
            ));
        }
    }
    for &(of, replica) in &b.replicas {
        if !tree.contains(&of) {
            out.push(Diagnostic::warning(
                "W005",
                format!("replica {replica} of {of}"),
                "replicates a peer that is not part of the invocation tree",
                "replicate a tree participant",
            ));
        }
    }
    for (peer, child, _) in &b.handlers {
        if !b.edges.contains(&(*peer, *child)) {
            out.push(Diagnostic::warning(
                "W005",
                format!("handler on ({peer}, {child})"),
                "attached to a call edge that does not exist",
                "attach handlers to declared invocation edges",
            ));
        }
    }
    if let Some(f) = b.inject_fault {
        if !all.contains(&f) {
            out.push(Diagnostic::warning(
                "W005",
                format!("fault at {f}"),
                "fault injected into a peer absent from the scenario",
                "inject the fault into a participant",
            ));
        }
    }
    for d in b.durations.keys() {
        if !all.contains(d) {
            out.push(Diagnostic::warning(
                "W005",
                format!("duration for {d}"),
                "service duration set for a peer absent from the scenario",
                "set durations for participants only",
            ));
        }
    }

    // --- W004: disconnects that cannot do anything.
    for &(at, p) in &b.disconnects {
        if !all.contains(&p) {
            out.push(Diagnostic::warning(
                "W004",
                format!("disconnect of {p} at t={at}"),
                "the peer is not part of the scenario; the disconnect is a no-op",
                "disconnect a participant",
            ));
        } else if b.supers.contains(&p) {
            out.push(Diagnostic::warning(
                "W004",
                format!("disconnect of {p} at t={at}"),
                "super peers are trusted peers which do not disconnect; the event is ignored",
                "disconnect a non-super participant (or unmark the peer)",
            ));
        } else if at > b.deadline {
            out.push(Diagnostic::warning(
                "W004",
                format!("disconnect of {p} at t={at}"),
                format!("scheduled after the deadline {}; the simulation never reaches it", b.deadline),
                "schedule the disconnect inside the simulated window",
            ));
        }
    }

    // --- W002/W003/W006: parse each peer's document and inspect the
    // handlers actually attached to its embedded calls.
    for &p in &tree {
        let xml = b.doc_xml(p);
        let doc = match Document::parse(&xml) {
            Ok(d) => d,
            Err(e) => {
                out.push(Diagnostic::error(
                    "W006",
                    format!("peer {p}"),
                    format!("generated document does not parse: {e}"),
                    "fix the handler XML attached to this peer's calls",
                ));
                continue;
            }
        };
        for call in ServiceCall::scan(&doc) {
            let Some(child) = call_target(&call) else { continue };
            let subtree = subtree_of(b, child);
            for (h, handler) in call.handlers.iter().enumerate() {
                let loc = format!("peer {p}, call to {child}, handler #{h}");
                // W007: handlers are consulted in declaration order and
                // the first match wins, so a catch is dead code when an
                // earlier handler on the same call already takes every
                // fault it could take — an enclosing catchAll, or a catch
                // for the same fault name.
                let shadowed_by = call.handlers[..h]
                    .iter()
                    .position(|prev| prev.fault_name.is_none() || prev.fault_name == handler.fault_name);
                if let Some(j) = shadowed_by {
                    let what = match &call.handlers[j].fault_name {
                        None => "the catchAll".to_string(),
                        Some(n) => format!("the catch for `{n}`"),
                    };
                    out.push(Diagnostic::warning(
                        "W007",
                        loc,
                        format!("unreachable: {what} at handler #{j} on the same call matches first"),
                        "drop the shadowed handler or move it before the broader one",
                    ));
                    continue;
                }
                if let Some(name) = &handler.fault_name {
                    if !RAISABLE_FAULTS.contains(&name.as_str()) {
                        out.push(Diagnostic::warning(
                            "W002",
                            loc.clone(),
                            format!("catches `{name}`, a fault no component raises; the handler can never fire"),
                            format!("catch one of {RAISABLE_FAULTS:?} or use catchAll"),
                        ));
                        continue;
                    }
                    if name == "InjectedFault" && !b.inject_fault.map(|f| subtree.contains(&f)).unwrap_or(false) {
                        out.push(Diagnostic::warning(
                            "W002",
                            loc.clone(),
                            "catches `InjectedFault` but no fault is injected below this call",
                            "inject the fault in this subtree or drop the handler",
                        ));
                        continue;
                    }
                }
                // W003: retrying a subtree that fails *permanently* (an
                // injected service fault fires on every attempt) only
                // helps if a replica can serve the failing peer.
                if let HandlerAction::Retry { alternative: None, .. } = &handler.action {
                    if let Some(f) = b.inject_fault {
                        let matches_fault = handler.fault_name.as_deref().map(|n| n == "InjectedFault").unwrap_or(true);
                        let has_replica = b.replicas.iter().any(|(of, _)| *of == f);
                        if subtree.contains(&f) && matches_fault && !has_replica {
                            out.push(Diagnostic::warning(
                                "W003",
                                loc,
                                format!(
                                    "retries a subtree whose peer {f} fails on every attempt and has no replica; the retries re-invoke the same failing provider"
                                ),
                                "register a replica of the failing peer or hand the fault to a substitute/propagate handler",
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_figures_are_clean() {
        assert!(analyze_scenario(&ScenarioBuilder::fig1()).is_empty());
        assert!(analyze_scenario(&ScenarioBuilder::fig2()).is_empty());
    }

    #[test]
    fn recovery_variants_are_clean() {
        // catchAll retry with a replica of the failing peer: W003 must not
        // fire — the retry has somewhere to go.
        let (b, _replica) = ScenarioBuilder::fig1().fault_at(5).with_replica(5);
        let b = b.retry_handler(3, 5, None, 2, 3);
        assert!(analyze_scenario(&b).is_empty(), "{:?}", analyze_scenario(&b));
        // Substitution handlers absorb the fault without retrying.
        let b = ScenarioBuilder::fig1().fault_at(5).substitute_handler(3, 5, None);
        assert!(analyze_scenario(&b).is_empty(), "{:?}", analyze_scenario(&b));
    }

    #[test]
    fn w001_cycles_orphans_and_multiparents() {
        // 3 invoked by both 2 and 4; 7→8 disconnected from the origin.
        let b = ScenarioBuilder::new(1, &[(1, 2), (2, 3), (4, 3), (7, 8), (9, 9)]);
        let diags = analyze_scenario(&b);
        let w001 = diags.iter().filter(|d| d.rule == "W001").count();
        assert!(w001 >= 4, "multi-parent + orphans {{4,7,8,9}} + self-loop: {diags:?}");
    }

    #[test]
    fn w002_unreachable_named_catch() {
        let b = ScenarioBuilder::fig1().retry_handler(1, 2, Some("NoSuchFaultEver"), 1, 1);
        let diags = analyze_scenario(&b);
        assert!(diags.iter().any(|d| d.rule == "W002"), "{diags:?}");
        // Catching InjectedFault on a branch with no injected fault.
        let b = ScenarioBuilder::fig1().fault_at(5).retry_handler(1, 2, Some("InjectedFault"), 1, 1);
        let diags = analyze_scenario(&b);
        assert!(diags.iter().any(|d| d.rule == "W002"), "{diags:?}");
        // Same handler on the failing branch is reachable.
        let (b, _r) = ScenarioBuilder::fig1().fault_at(5).with_replica(5);
        let b = b.retry_handler(3, 5, Some("InjectedFault"), 1, 1);
        assert!(analyze_scenario(&b).is_empty(), "{:?}", analyze_scenario(&b));
    }

    #[test]
    fn w003_retry_without_replica() {
        let b = ScenarioBuilder::fig1().fault_at(5).retry_handler(3, 5, None, 2, 3);
        let diags = analyze_scenario(&b);
        assert!(diags.iter().any(|d| d.rule == "W003"), "{diags:?}");
    }

    #[test]
    fn w004_noop_disconnects() {
        let b = ScenarioBuilder::fig2().disconnect(10, 99).disconnect(20, 1);
        let diags = analyze_scenario(&b);
        let w004 = diags.iter().filter(|d| d.rule == "W004").count();
        assert_eq!(w004, 2, "absent peer + super peer: {diags:?}");
    }

    #[test]
    fn w005_dangling_references() {
        let mut b = ScenarioBuilder::fig1();
        b.supers.push(42);
        b.replicas.push((77, 10));
        b.handlers.push((2, 5, "<axml:catchAll><out>x</out></axml:catchAll>".into()));
        let diags = analyze_scenario(&b);
        let w005 = diags.iter().filter(|d| d.rule == "W005").count();
        assert!(w005 >= 3, "{diags:?}");
    }

    #[test]
    fn w007_shadowed_handlers() {
        // A catchAll declared first swallows every fault; the later named
        // catch is dead code.
        let b =
            ScenarioBuilder::fig1().retry_handler(1, 2, None, 1, 1).retry_handler(1, 2, Some("ExecutionFault"), 1, 1);
        let diags = analyze_scenario(&b);
        assert!(diags.iter().any(|d| d.rule == "W007" && d.message.contains("catchAll")), "{diags:?}");
        // Two catches for the same fault name: the second never fires.
        let b = ScenarioBuilder::fig1().retry_handler(1, 2, Some("ExecutionFault"), 1, 1).substitute_handler(
            1,
            2,
            Some("ExecutionFault"),
        );
        let diags = analyze_scenario(&b);
        assert!(diags.iter().any(|d| d.rule == "W007" && d.message.contains("ExecutionFault")), "{diags:?}");
    }

    #[test]
    fn w007_distinct_catches_with_trailing_catchall_are_clean() {
        // Distinct named catches, broadest last — every handler reachable.
        let b = ScenarioBuilder::fig1()
            .retry_handler(1, 2, Some("ExecutionFault"), 1, 1)
            .retry_handler(1, 2, Some("PeerUnreachable"), 1, 1)
            .substitute_handler(1, 2, None);
        let diags = analyze_scenario(&b);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn w006_malformed_handler_xml() {
        let mut b = ScenarioBuilder::fig1();
        b.handlers.push((1, 2, "<axml:catchAll><unclosed></axml:catchAll>".into()));
        let diags = analyze_scenario(&b);
        assert!(diags.iter().any(|d| d.rule == "W006"), "{diags:?}");
    }
}
