//! Active-list invariant rules (`L…`) — §3.3's chaining only pays off if
//! the list every peer carries really is the invocation tree.
//!
//! | Rule | Finding |
//! |------|---------|
//! | L001 | a peer appears more than once in the list |
//! | L002 | `parent_of`/`children_of` views are mutually inconsistent |
//! | L003 | `closest_super_ancestor` disagrees with a reference walk |
//! | L004 | the paper notation does not round-trip through `parse_notation` (live list, or a stored string via [`analyze_notation`]) |
//! | L005 | the list diverges from the scenario's planned invocation tree |

use crate::diag::Diagnostic;
use axml_core::chain::{ActiveList, ChainNode};
use axml_p2p::PeerId;
use std::collections::BTreeMap;

/// Walks the raw structure, yielding every `(parent, node)` pair —
/// independent of the list's own (first-match) navigation methods, so it
/// stays honest on corrupted lists.
fn structure(l: &ActiveList) -> Vec<(Option<PeerId>, &ChainNode)> {
    fn go<'a>(parent: Option<PeerId>, n: &'a ChainNode, out: &mut Vec<(Option<PeerId>, &'a ChainNode)>) {
        out.push((parent, n));
        for c in &n.children {
            go(Some(n.peer), c, out);
        }
    }
    let mut out = Vec::new();
    go(None, &l.root, &mut out);
    out
}

/// Runs every L-rule over an active-peer list.
pub fn analyze_chain(l: &ActiveList) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let nodes = structure(l);

    // --- L001: peer uniqueness.
    let mut counts: BTreeMap<PeerId, usize> = BTreeMap::new();
    for (_, n) in &nodes {
        *counts.entry(n.peer).or_default() += 1;
    }
    for (peer, count) in counts.iter().filter(|(_, c)| **c > 1) {
        out.push(Diagnostic::error(
            "L001",
            peer.to_string(),
            format!("appears {count} times in the list; navigation resolves only the first occurrence"),
            "record each peer once (add_invocation ignores duplicates; do not splice subtrees by hand)",
        ));
    }

    // --- L002: structural parents vs. the navigation views.
    for (parent, n) in &nodes {
        if l.parent_of(n.peer) != *parent {
            out.push(Diagnostic::error(
                "L002",
                n.peer.to_string(),
                format!("structural parent is {:?} but parent_of reports {:?}", parent, l.parent_of(n.peer)),
                "repair the tree so the navigation views agree with the structure",
            ));
        }
        let structural_children: Vec<PeerId> = n.children.iter().map(|c| c.peer).collect();
        if l.children_of(n.peer) != structural_children {
            out.push(Diagnostic::error(
                "L002",
                n.peer.to_string(),
                format!(
                    "structural children are {structural_children:?} but children_of reports {:?}",
                    l.children_of(n.peer)
                ),
                "repair the tree so the navigation views agree with the structure",
            ));
        }
    }

    // --- L003: the super-peer fallback walk (scenario (b)'s "closest
    // super peer") against a reference computed along each node's actual
    // root path — honest even when duplicates confuse first-match lookup.
    fn check_super_walk(l: &ActiveList, path: &mut Vec<(PeerId, bool)>, n: &ChainNode, out: &mut Vec<Diagnostic>) {
        let reference = path.iter().rev().find(|(_, s)| *s).map(|(p, _)| *p);
        if l.closest_super_ancestor(n.peer) != reference {
            out.push(Diagnostic::error(
                "L003",
                n.peer.to_string(),
                format!(
                    "closest_super_ancestor reports {:?}, the walk along the node's root path finds {reference:?}",
                    l.closest_super_ancestor(n.peer)
                ),
                "fix the super markers or the tree so the fallback target is well-defined",
            ));
        }
        path.push((n.peer, n.is_super));
        for c in &n.children {
            check_super_walk(l, path, c, out);
        }
        path.pop();
    }
    check_super_walk(l, &mut Vec::new(), &l.root, &mut out);

    // --- L004: notation round-trip.
    let notation = l.to_notation();
    match ActiveList::parse_notation(&notation) {
        Ok(back) if back == *l => {}
        Ok(_) => out.push(Diagnostic::error(
            "L004",
            notation.clone(),
            "notation parses back to a different list",
            "the rendered notation must uniquely determine the list",
        )),
        Err(e) => out.push(Diagnostic::error(
            "L004",
            notation.clone(),
            format!("rendered notation does not parse back: {e}"),
            "the rendered notation must be syntactically valid",
        )),
    }
    out
}

/// L004 over a *stored* notation string — a claimed rendering shipped in
/// a message or persisted in a journal, as opposed to one we just
/// produced ourselves. Sound storage means the string parses and is the
/// canonical rendering of the list it denotes; anything else cannot be
/// trusted to identify the active peers.
pub fn analyze_notation(notation: &str) -> Vec<Diagnostic> {
    match ActiveList::parse_notation(notation) {
        Ok(list) if list.to_notation() == notation => Vec::new(),
        Ok(list) => vec![Diagnostic::error(
            "L004",
            notation.to_string(),
            format!("stored notation is not canonical; it denotes the list rendered as `{}`", list.to_notation()),
            "store to_notation() output verbatim so renderings compare byte-for-byte",
        )],
        Err(e) => vec![Diagnostic::error(
            "L004",
            notation.to_string(),
            format!("stored notation does not parse: {e}"),
            "re-derive the notation from the live list; do not edit renderings by hand",
        )],
    }
}

/// Compares a concrete list against the invocation tree a scenario plans
/// to unfold (L005): peers in the list that the scenario never invokes
/// are orphaned entries; peers invoked under the wrong parent break the
/// chain's navigation promises.
pub fn analyze_chain_against(actual: &ActiveList, planned: &ActiveList) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let planned_peers = planned.all_peers();
    for (parent, n) in structure(actual) {
        if !planned_peers.contains(&n.peer) {
            out.push(Diagnostic::warning(
                "L005",
                n.peer.to_string(),
                "orphaned entry: the scenario never invokes this peer",
                "remove the entry or declare the invocation edge in the scenario",
            ));
            continue;
        }
        if n.peer != planned.root.peer && parent != planned.parent_of(n.peer) {
            out.push(Diagnostic::warning(
                "L005",
                n.peer.to_string(),
                format!(
                    "recorded under parent {parent:?} but the scenario invokes it from {:?}",
                    planned.parent_of(n.peer)
                ),
                "record invocations under the peer that actually issued them",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_list() -> ActiveList {
        let mut l = ActiveList::new(PeerId(1), true);
        l.add_invocation(PeerId(1), PeerId(2), false);
        l.add_invocation(PeerId(2), PeerId(3), false);
        l.add_invocation(PeerId(2), PeerId(4), false);
        l.add_invocation(PeerId(3), PeerId(6), false);
        l.add_invocation(PeerId(4), PeerId(5), false);
        l
    }

    #[test]
    fn well_formed_lists_are_clean() {
        assert!(analyze_chain(&fig2_list()).is_empty());
        assert!(analyze_chain(&ActiveList::new(PeerId(9), false)).is_empty());
    }

    #[test]
    fn duplicates_trip_l001_and_l002() {
        let l = ActiveList {
            root: ChainNode {
                peer: PeerId(1),
                is_super: false,
                children: vec![
                    ChainNode::leaf(PeerId(2), false),
                    ChainNode { peer: PeerId(2), is_super: true, children: vec![ChainNode::leaf(PeerId(9), false)] },
                ],
            },
        };
        let diags = analyze_chain(&l);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"L001"), "{diags:?}");
        assert!(rules.contains(&"L002"), "{diags:?}");
        // AP9's real ancestor chain has a super AP2; the first-match walk
        // sees the non-super first occurrence, so L003 fires too.
        assert!(rules.contains(&"L003"), "{diags:?}");
    }

    #[test]
    fn notation_analysis() {
        // Canonical renderings are clean.
        assert!(analyze_notation(&fig2_list().to_notation()).is_empty());
        assert!(analyze_notation("[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]").is_empty());
        // Unbalanced string: parse failure.
        let diags = analyze_notation("[AP1 → [AP2] || [AP2");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "L004");
        assert!(diags[0].message.contains("does not parse"), "{diags:?}");
        // Parseable but non-canonical (stray whitespace).
        let diags = analyze_notation("[AP1*  →  AP2]");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "L004");
        assert!(diags[0].message.contains("not canonical"), "{diags:?}");
    }

    #[test]
    fn chain_vs_planned_orphans() {
        let planned = fig2_list();
        let mut actual = fig2_list();
        actual.add_invocation(PeerId(5), PeerId(42), false);
        let diags = analyze_chain_against(&actual, &planned);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "L005");
        assert!(diags[0].message.contains("orphaned"));
    }

    #[test]
    fn chain_vs_planned_wrong_parent() {
        let planned = fig2_list();
        let mut actual = ActiveList::new(PeerId(1), true);
        actual.add_invocation(PeerId(1), PeerId(2), false);
        actual.add_invocation(PeerId(1), PeerId(3), false); // planned: under 2
        let diags = analyze_chain_against(&actual, &planned);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "L005");
    }
}
