//! Structured diagnostics: what a rule found, where, and what to do.

use serde::Serialize;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Suspicious but survivable: the scenario runs, some construct is
    /// dead weight or will never help.
    Warning,
    /// The guarded paper property is violated: compensation cannot
    /// restore the document, the invocation graph is not a tree, or an
    /// active-list invariant is broken.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of one rule.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Stable rule id (`C…` compensation, `W…` well-formedness, `L…`
    /// active-list).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Where: a peer, effect index, action index, or chain location.
    pub location: String,
    /// What the rule found.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

impl Diagnostic {
    /// An error-level finding.
    pub fn error(
        rule: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
            suggestion: suggestion.into(),
        }
    }

    /// A warning-level finding.
    pub fn warning(
        rule: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
            suggestion: suggestion.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}: {} (fix: {})", self.severity, self.rule, self.location, self.message, self.suggestion)
    }
}

/// The findings of an analysis run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Report {
    /// All findings, in rule-evaluation order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Absorbs findings from one rule set.
    pub fn extend(&mut self, diags: Vec<Diagnostic>) {
        self.diagnostics.extend(diags);
    }

    /// Absorbs findings, prefixing each location with a context label
    /// (e.g. the scenario name).
    pub fn extend_with_context(&mut self, context: &str, diags: Vec<Diagnostic>) {
        for mut d in diags {
            d.location = format!("{context}: {}", d.location);
            self.diagnostics.push(d);
        }
    }

    /// True if nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The distinct rule ids that fired, sorted.
    pub fn rule_ids(&self) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = self.diagnostics.iter().map(|d| d.rule).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Human-readable rendering, one finding per line plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count();
        let warnings = self.diagnostics.len() - errors;
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
        out
    }

    /// JSON rendering (an object with a `diagnostics` array).
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_bookkeeping() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.extend(vec![
            Diagnostic::error("C002", "action #0", "does not telescope", "log the subtree"),
            Diagnostic::warning("W004", "peer 99", "no-op disconnect", "drop it"),
            Diagnostic::error("C002", "action #1", "extra action", "remove it"),
        ]);
        assert!(!r.is_clean());
        assert_eq!(r.rule_ids(), vec!["C002", "W004"]);
        let text = r.render_text();
        assert!(text.contains("2 error(s), 1 warning(s)"), "{text}");
        assert!(text.contains("error [C002] action #0"), "{text}");
    }

    #[test]
    fn context_prefix() {
        let mut r = Report::default();
        r.extend_with_context("fig2", vec![Diagnostic::warning("W004", "peer 3", "m", "s")]);
        assert_eq!(r.diagnostics[0].location, "fig2: peer 3");
    }

    #[test]
    fn json_is_parseable() {
        let mut r = Report::default();
        r.extend(vec![Diagnostic::error("L001", "AP2", "duplicate \"peer\"", "dedup")]);
        let json = r.render_json();
        assert!(json.contains("\"rule\":\"L001\""), "{json}");
        assert!(json.contains("\"severity\":\"Error\""), "{json}");
    }
}
