//! Static verification for the atomicity stack: audits the three paper
//! pillars — compensation soundness (§3.1), scenario well-formedness for
//! nested recovery (§3.2), and active-peer-list chaining invariants
//! (§3.3) — without executing a single scenario.
//!
//! Rule families:
//!
//! - `C…` ([`compensation`]): effect logs and compensation bundles —
//!   does the composed inverse really restore the document?
//! - `W…` ([`scenario`]): scenario descriptions — is the invocation
//!   graph a tree, can every handler fire, does every declaration
//!   reference something real?
//! - `L…` ([`chain`]): active-peer lists — tree-ness, navigation-view
//!   consistency, super-fallback correctness, notation round-trip.
//!
//! The `axml-analyze` binary runs the full rule set over the built-in
//! scenarios (and, with `--demo-broken`, over a deliberately-broken
//! fixture) and exits nonzero when anything is found.

#![forbid(unsafe_code)]

pub mod chain;
pub mod compensation;
pub mod diag;
pub mod fixture;
pub mod scenario;

pub use chain::{analyze_chain, analyze_chain_against, analyze_notation};
pub use compensation::{analyze_action_roundtrip, analyze_compensation, analyze_effect_log};
pub use diag::{Diagnostic, Report, Severity};
pub use scenario::{analyze_scenario, RAISABLE_FAULTS};

use axml_core::scenarios::ScenarioBuilder;
use axml_query::{InsertPos, Locator, NodePath, UpdateAction};
use axml_xml::{Document, Fragment};

/// Runs every rule family over a scenario description: the W-rules over
/// the declaration, the L-rules over the invocation tree it plans to
/// unfold, and the C-rules over real effect logs obtained by probing each
/// peer's document with structural delete/replace/insert round-trips.
pub fn analyze_all(builder: &ScenarioBuilder) -> Report {
    let mut report = Report::default();
    report.extend(analyze_scenario(builder));
    report.extend(analyze_chain(&builder.planned_chain()));
    let probes = [
        UpdateAction::delete(Locator::Node(NodePath(vec![0]))),
        UpdateAction::replace(Locator::Node(NodePath(vec![1])), vec![Fragment::elem_text("probe", "x")]),
        UpdateAction::insert_at(
            Locator::Node(NodePath(vec![])),
            vec![Fragment::elem_text("probe", "y")],
            InsertPos::At(0),
        ),
    ];
    let mut peers = builder.peers();
    peers.retain(|p| builder.edges.iter().any(|(a, b)| a == p || b == p) || *p == builder.origin);
    for p in peers {
        let Ok(doc) = Document::parse(&builder.doc_xml(p)) else {
            continue; // already reported as W006
        };
        for probe in &probes {
            report.extend_with_context(&format!("peer {p}"), analyze_action_roundtrip(&doc, probe));
        }
    }
    report
}

/// Runs every rule family over the deliberately-broken fixture.
pub fn analyze_broken_fixture() -> Report {
    let f = fixture::broken();
    let mut report = Report::default();
    report.extend_with_context("scenario", analyze_scenario(&f.builder));
    report.extend_with_context("chain", analyze_chain(&f.chain));
    report.extend_with_context("chain", analyze_chain_against(&f.chain, &f.builder.planned_chain()));
    report.extend_with_context("chain", analyze_notation(&f.notation));
    report.extend_with_context("log", analyze_effect_log(&f.effects));
    report.extend_with_context("log", analyze_compensation(&f.effects, &f.compensation));
    report.extend_with_context("log", analyze_compensation(&f.reordered_effects, &f.reordered_compensation));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_scenarios_are_clean() {
        for (name, b) in [("fig1", ScenarioBuilder::fig1()), ("fig2", ScenarioBuilder::fig2())] {
            let report = analyze_all(&b);
            assert!(report.is_clean(), "{name}: {}", report.render_text());
        }
    }

    #[test]
    fn broken_fixture_trips_every_rule_in_the_catalogue() {
        let report = analyze_broken_fixture();
        let ids = report.rule_ids();
        for expected in [
            "C001", "C002", "C003", "C004", "C005", "C006", "W001", "W002", "W003", "W004", "W005", "W006", "W007",
            "L001", "L002", "L003", "L004", "L005",
        ] {
            assert!(ids.contains(&expected), "missing {expected}; fired: {ids:?}");
        }
    }
}
