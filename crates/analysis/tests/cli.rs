//! End-to-end tests of the `axml-analyze` binary: exit codes, text and
//! JSON output, scenario selection.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_axml-analyze")).args(args).output().expect("binary runs")
}

#[test]
fn all_scenarios_are_clean_and_exit_zero() {
    let out = run(&["--all-scenarios"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
}

#[test]
fn single_scenario_selection() {
    let out = run(&["--scenario", "fig2"]);
    assert!(out.status.success());
    let out = run(&["--scenario", "no-such-scenario"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scenario"), "{err}");
}

#[test]
fn demo_broken_reports_distinct_rules_and_exits_one() {
    let out = run(&["--demo-broken"]);
    assert_eq!(out.status.code(), Some(1), "findings must drive a nonzero exit");
    let text = String::from_utf8_lossy(&out.stdout);
    // The acceptance bar: at least three distinct rule ids, one per
    // pillar (compensation, well-formedness, chaining).
    for rule in ["C001", "C002", "C003", "W001", "W002", "W003", "L001", "L005"] {
        assert!(text.contains(&format!("[{rule}]")), "missing {rule} in:\n{text}");
    }
}

#[test]
fn json_output_is_machine_readable() {
    let out = run(&["--demo-broken", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    let v: serde::value::Value = serde_json::from_str(text.trim()).expect("valid JSON");
    let map = v.as_map().expect("top-level object");
    let diags = serde::value::field(map, "diagnostics").as_seq().expect("diagnostics array");
    assert!(diags.len() >= 3, "{text}");
    for d in diags {
        let d = d.as_map().expect("diagnostic object");
        for key in ["rule", "severity", "location", "message", "suggestion"] {
            assert!(serde::value::field(d, key).as_str().is_some(), "diagnostic missing string field {key}: {text}");
        }
    }
}

#[test]
fn bad_flags_exit_two_with_usage() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
