//! Structured transaction-lifecycle tracing.
//!
//! The chaos oracle (see `axml-chaos`) checks atomicity as a final-state
//! predicate — when it fails, the *why* is a causally-ordered sequence of
//! protocol transitions spread over many peers. This crate is the
//! zero-dependency event model for that record: peers emit typed
//! [`TraceEvent`]s (invoke, materialize, log-append, compensate,
//! abort-propagate, ack/retransmit/dedup, detect, crash/restart), the
//! simulator stamps them with logical time and collects them into a
//! per-run [`TraceJournal`]. Because event order is a pure function of
//! the simulator's seeded schedule, replaying a scripted fault plane
//! reproduces the journal byte for byte.
//!
//! [`Snapshot`] is the companion registry: one flat `name → counter` map
//! unifying the simulator's `NetMetrics` with per-peer protocol stats,
//! included in trace dumps so a journal is self-describing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Where the simulator sends trace events.
///
/// Lives in the simulator config; [`TraceSink::Disabled`] (the default)
/// makes every emission a no-op so traced and untraced runs execute the
/// identical event schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceSink {
    /// Discard all events (the default — zero overhead).
    #[default]
    Disabled,
    /// Collect events into an in-memory [`TraceJournal`].
    Memory,
}

impl TraceSink {
    /// True if events are collected.
    pub fn enabled(&self) -> bool {
        matches!(self, TraceSink::Memory)
    }
}

/// An online consumer of trace events.
///
/// Where [`TraceJournal`] *stores* the event stream for post-hoc
/// analysis, an `EventSink` *watches* it as the run unfolds — the
/// simulator hands every stamped event to the attached sink before (or
/// instead of) journaling it. Sinks are observation-only: they must not
/// influence the event schedule, so attaching one never perturbs a
/// seeded run. The online protocol monitor in `axml-obs` is the primary
/// implementation.
pub trait EventSink {
    /// Called once per emitted event, in emission (seq) order.
    fn on_event(&mut self, event: &TraceEvent);
}

/// Shared handle to an [`EventSink`] — the simulator is single-threaded,
/// so plain `Rc<RefCell<..>>` interior mutability suffices.
pub type SharedSink = Rc<RefCell<dyn EventSink>>;

/// What happened — one variant per protocol transition.
///
/// Peer ids are raw `u32`s (this crate sits below the p2p layer), txn and
/// invocation ids are their `Display` forms (`T1.0`, `inv3.7`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A transaction was submitted at its origin peer.
    Submit {
        /// Service method of the root invocation.
        method: String,
    },
    /// A service call was issued to a remote provider.
    Invoke {
        /// Provider peer.
        to: u32,
        /// Service method.
        method: String,
    },
    /// A provider started serving an incoming invocation.
    Serve {
        /// Invoking peer.
        from: u32,
        /// Service method.
        method: String,
    },
    /// Child results were materialized into the local document.
    Materialize {
        /// Target document.
        doc: String,
        /// Items merged.
        items: u64,
    },
    /// An entry was appended to the durable journal.
    LogAppend {
        /// Entry label (mirrors `JournalEntry` variant names).
        entry: String,
    },
    /// Results were returned to the invoker (or its chain substitute).
    ResultReturn {
        /// Receiving peer.
        to: u32,
    },
    /// A fault was raised up the invocation tree.
    FaultRaise {
        /// Receiving peer.
        to: u32,
    },
    /// A compensating action list was derived from the journal.
    CompensateDerive {
        /// Number of compensating actions.
        actions: u64,
    },
    /// Compensating actions were applied to local documents.
    CompensateApply {
        /// Number of compensating actions.
        actions: u64,
    },
    /// One compensating batch was applied, undoing one forward log
    /// record. `undoes` is the forward index of the log record being
    /// undone, so §3.1's reverse-order rule is checkable online: within
    /// a (peer, txn), successive `undoes` values must strictly decrease.
    CompensateOp {
        /// Document the batch was applied to.
        doc: String,
        /// Forward index (0-based, log order) of the record undone.
        undoes: u64,
        /// Number of compensating actions in the batch.
        actions: u64,
    },
    /// An abort was propagated to a subordinate.
    AbortPropagate {
        /// Receiving peer.
        to: u32,
    },
    /// The transaction reached a terminal state at this peer.
    Resolve {
        /// True for commit, false for abort.
        committed: bool,
    },
    /// An acknowledgement was sent for a reliable delivery.
    AckSend {
        /// Receiving peer.
        to: u32,
        /// Delivery id.
        id: u64,
    },
    /// A reliable delivery was retransmitted.
    Retransmit {
        /// Receiving peer.
        to: u32,
        /// Delivery id.
        id: u64,
        /// Attempt number (1-based for the first resend).
        attempt: u32,
    },
    /// Retransmission gave up after `max_retransmits` attempts.
    RetransmitGiveUp {
        /// Receiving peer.
        to: u32,
        /// Delivery id.
        id: u64,
    },
    /// A duplicate reliable delivery was suppressed by the dedup set.
    DedupSuppress {
        /// Sending peer.
        from: u32,
        /// Delivery id.
        id: u64,
    },
    /// The dedup set was pruned of finalized-transaction entries.
    DedupPrune {
        /// Entries evicted.
        evicted: u64,
    },
    /// A peer failure was detected.
    Detect {
        /// The peer detected as failed/disconnected.
        peer: u32,
        /// Detection mechanism label.
        how: String,
    },
    /// The simulator crashed this peer (volatile state lost).
    Crash,
    /// The peer restarted and replayed its durable journal.
    Restart {
        /// In-doubt transactions presumed aborted during recovery.
        presumed_aborts: u64,
    },
    /// The simulator disconnected this peer.
    Disconnect,
    /// The simulator reconnected this peer.
    Reconnect,
    /// A sampled gauge reading (time-series plane). Emitted by the
    /// simulator's window sampler at fixed sim-time boundaries: `at` is
    /// the window boundary, `name` the metric (`outbox_depth`,
    /// `wal_bytes`, …), `value` the instantaneous reading on the
    /// emitting peer. Gauges are observation-only — the protocol
    /// monitor and spec conformance checker ignore them.
    Gauge {
        /// Metric name (snake_case, no peer prefix — the event's `peer`
        /// field scopes it).
        name: String,
        /// Instantaneous integer reading at the window boundary.
        value: u64,
    },
}

impl EventKind {
    /// Short stable label (used for grouping and counting).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Submit { .. } => "submit",
            EventKind::Invoke { .. } => "invoke",
            EventKind::Serve { .. } => "serve",
            EventKind::Materialize { .. } => "materialize",
            EventKind::LogAppend { .. } => "log-append",
            EventKind::ResultReturn { .. } => "result-return",
            EventKind::FaultRaise { .. } => "fault-raise",
            EventKind::CompensateDerive { .. } => "compensate-derive",
            EventKind::CompensateApply { .. } => "compensate-apply",
            EventKind::CompensateOp { .. } => "compensate-op",
            EventKind::AbortPropagate { .. } => "abort-propagate",
            EventKind::Resolve { .. } => "resolve",
            EventKind::AckSend { .. } => "ack-send",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::RetransmitGiveUp { .. } => "retransmit-give-up",
            EventKind::DedupSuppress { .. } => "dedup-suppress",
            EventKind::DedupPrune { .. } => "dedup-prune",
            EventKind::Detect { .. } => "detect",
            EventKind::Crash => "crash",
            EventKind::Restart { .. } => "restart",
            EventKind::Disconnect => "disconnect",
            EventKind::Reconnect => "reconnect",
            EventKind::Gauge { .. } => "gauge",
        }
    }

    fn detail(&self) -> String {
        match self {
            EventKind::Submit { method } => format!("method={method}"),
            EventKind::Invoke { to, method } => format!("to=AP{to} method={method}"),
            EventKind::Serve { from, method } => format!("from=AP{from} method={method}"),
            EventKind::Materialize { doc, items } => format!("doc={doc} items={items}"),
            EventKind::LogAppend { entry } => format!("entry={entry}"),
            EventKind::ResultReturn { to } => format!("to=AP{to}"),
            EventKind::FaultRaise { to } => format!("to=AP{to}"),
            EventKind::CompensateDerive { actions } => format!("actions={actions}"),
            EventKind::CompensateApply { actions } => format!("actions={actions}"),
            EventKind::CompensateOp { doc, undoes, actions } => {
                format!("doc={doc} undoes={undoes} actions={actions}")
            }
            EventKind::AbortPropagate { to } => format!("to=AP{to}"),
            EventKind::Resolve { committed } => (if *committed { "committed" } else { "aborted" }).to_string(),
            EventKind::AckSend { to, id } => format!("to=AP{to} id={id}"),
            EventKind::Retransmit { to, id, attempt } => {
                format!("to=AP{to} id={id} attempt={attempt}")
            }
            EventKind::RetransmitGiveUp { to, id } => format!("to=AP{to} id={id}"),
            EventKind::DedupSuppress { from, id } => format!("from=AP{from} id={id}"),
            EventKind::DedupPrune { evicted } => format!("evicted={evicted}"),
            EventKind::Detect { peer, how } => format!("peer=AP{peer} how={how}"),
            EventKind::Crash | EventKind::Disconnect | EventKind::Reconnect => String::new(),
            EventKind::Restart { presumed_aborts } => {
                format!("presumed-aborts={presumed_aborts}")
            }
            EventKind::Gauge { name, value } => format!("name={name} value={value}"),
        }
    }
}

/// One stamped lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Journal-wide sequence number (total order of emission).
    pub seq: u64,
    /// Simulator logical time.
    pub at: u64,
    /// Emitting peer.
    pub peer: u32,
    /// Emitting peer's crash-restart epoch.
    pub epoch: u64,
    /// Transaction this event belongs to, if any (`Display` form).
    pub txn: Option<String>,
    /// Invocation span this event belongs to, if any (`Display` form).
    pub span: Option<String>,
    /// Parent invocation span, if known (`Display` form) — present on
    /// [`EventKind::Invoke`] events, from which the invocation tree of
    /// the paper's Figures 1–2 is reconstructed.
    pub parent: Option<String>,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// One-line human rendering (`[t=…] label detail span=… parent=…`) —
    /// shared by [`TraceJournal::render_tree`] and the flight recorder.
    pub fn render(&self) -> String {
        let mut line = format!("[t={:>5} AP{} e{}] {}", self.at, self.peer, self.epoch, self.kind.label());
        let detail = self.kind.detail();
        if !detail.is_empty() {
            let _ = write!(line, " {detail}");
        }
        if let Some(span) = &self.span {
            let _ = write!(line, " span={span}");
        }
        if let Some(parent) = &self.parent {
            let _ = write!(line, " parent={parent}");
        }
        line
    }
}

/// The per-run event journal collected by the simulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceJournal {
    events: Vec<TraceEvent>,
}

impl TraceJournal {
    /// Stamps and appends one event; `seq` is assigned here.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        at: u64,
        peer: u32,
        epoch: u64,
        txn: Option<String>,
        span: Option<String>,
        parent: Option<String>,
        kind: EventKind,
    ) {
        let seq = self.events.len() as u64;
        self.events.push(TraceEvent { seq, at, peer, epoch, txn, span, parent, kind });
    }

    /// All events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events with a given [`EventKind::label`].
    pub fn count(&self, label: &str) -> usize {
        self.events.iter().filter(|e| e.kind.label() == label).count()
    }

    /// The journal as JSON lines (one event per line). This is the
    /// byte-stable replay artifact: same scripted plane + same seed ⇒
    /// identical output.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("trace events serialize"));
            out.push('\n');
        }
        out
    }

    /// Parses a journal back from [`Self::to_json_lines`] output.
    pub fn from_json_lines(text: &str) -> Result<TraceJournal, String> {
        let mut events = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            events.push(serde_json::from_str::<TraceEvent>(line).map_err(|e| format!("{e:?}"))?);
        }
        Ok(TraceJournal { events })
    }

    /// FNV-1a digest of the JSON-lines form — a compact replay-stability
    /// fingerprint.
    pub fn digest(&self) -> u64 {
        fnv64(self.to_json_lines().as_bytes())
    }

    /// Pretty-prints the journal as causal trees: events grouped by
    /// transaction, invocation spans nested by parent edge (taken from
    /// [`EventKind::Invoke`] events) — the run-time image of the paper's
    /// Figures 1–2 invocation trees. Events outside any span are listed
    /// under the transaction header; events outside any transaction (the
    /// delivery/churn substrate) come last.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        // Transactions in order of first appearance.
        let mut txns: Vec<&str> = Vec::new();
        for e in &self.events {
            if let Some(t) = &e.txn {
                if !txns.iter().any(|x| x == t) {
                    txns.push(t);
                }
            }
        }
        for txn in &txns {
            let _ = writeln!(out, "txn {txn}");
            let evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.txn.as_deref() == Some(*txn)).collect();
            // parent edges: child span -> parent span (from Invoke/Submit emissions).
            let mut parent_of: BTreeMap<&str, &str> = BTreeMap::new();
            let mut spans: Vec<&str> = Vec::new();
            for e in &evs {
                if let Some(s) = &e.span {
                    if !spans.iter().any(|x| x == s) {
                        spans.push(s);
                    }
                    if let Some(p) = &e.parent {
                        parent_of.entry(s).or_insert(p);
                    }
                }
            }
            // Spanless events sit directly under the txn header.
            for e in evs.iter().filter(|e| e.span.is_none()) {
                let _ = writeln!(out, "  {}", e.render());
            }
            // Roots: spans with no recorded parent (or a parent outside
            // this txn). A root whose *recorded* parent never appears is
            // an orphan — typical of a crash truncating the journal —
            // and is flagged rather than silently promoted.
            let roots: Vec<&str> =
                spans.iter().copied().filter(|s| parent_of.get(s).is_none_or(|p| !spans.contains(p))).collect();
            for root in roots {
                let orphan_of = parent_of.get(root).copied().filter(|p| !spans.contains(p));
                render_span(&mut out, root, orphan_of, &spans, &parent_of, &evs, 1);
            }
        }
        let loose: Vec<&TraceEvent> = self.events.iter().filter(|e| e.txn.is_none()).collect();
        if !loose.is_empty() {
            let _ = writeln!(out, "(no txn)");
            for e in loose {
                let _ = writeln!(out, "  {}", e.render());
            }
        }
        out
    }
}

fn render_span(
    out: &mut String,
    span: &str,
    orphan_of: Option<&str>,
    spans: &[&str],
    parent_of: &BTreeMap<&str, &str>,
    evs: &[&TraceEvent],
    depth: usize,
) {
    let pad = "  ".repeat(depth);
    match orphan_of {
        Some(missing) => {
            let _ = writeln!(out, "{pad}span {span} (orphan: parent {missing} not in journal)");
        }
        None => {
            let _ = writeln!(out, "{pad}span {span}");
        }
    }
    for e in evs.iter().filter(|e| e.span.as_deref() == Some(span)) {
        let _ = writeln!(out, "{pad}  {}", e.render());
    }
    for child in spans.iter().copied().filter(|s| parent_of.get(s) == Some(&span)) {
        render_span(out, child, None, spans, parent_of, evs, depth + 1);
    }
}

/// One unified registry snapshot: flat counter map merging the
/// simulator's network metrics with per-peer protocol stats.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// `name → value`, names dot-scoped (`net.sent`, `peer.3.dup_suppressed`).
    pub counters: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Sets one counter.
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Adds to one counter (creating it at zero).
    pub fn add(&mut self, name: impl Into<String>, value: u64) {
        *self.counters.entry(name.into()).or_default() += value;
    }

    /// Reads one counter (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Absorbs another snapshot. Plain counters sum; high-water-mark
    /// names (`*_peak`) take the max — summing a peak across snapshots
    /// would fabricate a level no peer ever reached.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_default();
            if k.ends_with("_peak") {
                *slot = (*slot).max(*v);
            } else {
                *slot += v;
            }
        }
    }

    /// One `name = value` line per counter, sorted by name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} = {v}");
        }
        out
    }
}

/// A bounded ring of recent [`TraceEvent`]s — the storage primitive
/// behind the flight recorder in `axml-obs`.
///
/// Pushing beyond `capacity` evicts the oldest event; `dropped` counts
/// evictions so a dump can say how much history was lost. Iteration is
/// oldest-first, so a dump reads like the tail of the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRing {
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl EventRing {
    /// Empty ring holding at most `capacity` events (capacity 0 keeps
    /// nothing and counts every push as dropped).
    pub fn new(capacity: usize) -> Self {
        EventRing { capacity, events: std::collections::VecDeque::with_capacity(capacity.min(64)), dropped: 0 }
    }

    /// Appends one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or refused, at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// FNV-1a over a byte slice — the workspace's standard cheap fingerprint.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceJournal {
        let mut j = TraceJournal::default();
        j.record(
            0,
            1,
            0,
            Some("T1.0".into()),
            Some("inv1.0".into()),
            None,
            EventKind::Submit { method: "book".into() },
        );
        j.record(
            1,
            1,
            0,
            Some("T1.0".into()),
            Some("inv1.1".into()),
            Some("inv1.0".into()),
            EventKind::Invoke { to: 2, method: "pay".into() },
        );
        j.record(
            4,
            2,
            0,
            Some("T1.0".into()),
            Some("inv1.1".into()),
            None,
            EventKind::Serve { from: 1, method: "pay".into() },
        );
        j.record(9, 1, 0, Some("T1.0".into()), None, None, EventKind::Resolve { committed: true });
        j.record(9, 2, 0, None, None, None, EventKind::AckSend { to: 1, id: 7 });
        j
    }

    #[test]
    fn seq_is_assigned_in_emission_order() {
        let j = sample();
        let seqs: Vec<u64> = j.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn json_lines_round_trip() {
        let j = sample();
        let text = j.to_json_lines();
        assert_eq!(text.lines().count(), j.len());
        let back = TraceJournal::from_json_lines(&text).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.digest(), j.digest());
    }

    #[test]
    fn digest_is_content_sensitive() {
        let j = sample();
        let mut k = sample();
        k.record(10, 3, 0, None, None, None, EventKind::Crash);
        assert_ne!(j.digest(), k.digest());
    }

    #[test]
    fn tree_nests_child_span_under_parent() {
        let tree = sample().render_tree();
        let root = tree.find("span inv1.0").expect("root span shown");
        let child = tree.find("  span inv1.1").expect("child span shown indented");
        assert!(root < child, "parent renders before child:\n{tree}");
        assert!(tree.starts_with("txn T1.0\n"));
        assert!(tree.contains("(no txn)"), "substrate events listed:\n{tree}");
        assert!(tree.contains("resolve committed"));
    }

    #[test]
    fn count_by_label() {
        let j = sample();
        assert_eq!(j.count("invoke"), 1);
        assert_eq!(j.count("serve"), 1);
        assert_eq!(j.count("crash"), 0);
    }

    #[test]
    fn snapshot_merge_and_render() {
        let mut a = Snapshot::default();
        a.set("net.sent", 10);
        a.add("net.sent", 2);
        let mut b = Snapshot::default();
        b.set("net.sent", 1);
        b.set("peer.0.dup_suppressed", 4);
        a.merge(&b);
        assert_eq!(a.get("net.sent"), 13);
        assert_eq!(a.get("peer.0.dup_suppressed"), 4);
        assert_eq!(a.get("missing"), 0);
        assert!(a.render().contains("net.sent = 13"));
    }

    #[test]
    fn snapshot_merge_with_disjoint_keys_is_union_both_ways() {
        // Disjoint key sets must union without cross-talk, for plain
        // counters and peaks alike, regardless of merge direction.
        let mut a = Snapshot::default();
        a.set("net.sent", 5);
        a.set("peer.0.seen_peak", 3);
        let mut b = Snapshot::default();
        b.set("wal.bytes_appended", 512);
        b.set("peer.1.seen_peak", 9);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "disjoint merge commutes");
        assert_eq!(ab.counters.len(), 4);
        assert_eq!(ab.get("net.sent"), 5);
        assert_eq!(ab.get("wal.bytes_appended"), 512);
        assert_eq!(ab.get("peer.0.seen_peak"), 3);
        assert_eq!(ab.get("peer.1.seen_peak"), 9);
        // Merging a disjoint snapshot never disturbs existing entries.
        assert_eq!(ab.get("net.sent"), a.get("net.sent"));
    }

    #[test]
    fn snapshot_merge_takes_max_for_peaks() {
        // Regression: merge used to sum *_peak names, fabricating a
        // high-water mark no peer ever reached.
        let mut a = Snapshot::default();
        a.set("peer.1.seen_peak", 7);
        a.set("peer.1.dup_suppressed", 2);
        let mut b = Snapshot::default();
        b.set("peer.1.seen_peak", 4);
        b.set("peer.1.dup_suppressed", 3);
        a.merge(&b);
        assert_eq!(a.get("peer.1.seen_peak"), 7, "peaks max-merge, not sum");
        assert_eq!(a.get("peer.1.dup_suppressed"), 5, "plain counters still sum");
        // Max-merge also works when the peak is new to the receiver.
        let mut c = Snapshot::default();
        c.merge(&a);
        assert_eq!(c.get("peer.1.seen_peak"), 7);
    }

    #[test]
    fn tree_flags_orphan_spans() {
        // A child event whose parent span never appears (crash-truncated
        // journal) must render without panic and be flagged.
        let mut j = TraceJournal::default();
        j.record(
            3,
            4,
            0,
            Some("T1.0".into()),
            Some("inv1.2".into()),
            Some("inv1.0".into()),
            EventKind::Serve { from: 1, method: "pay".into() },
        );
        j.record(5, 4, 0, Some("T1.0".into()), Some("inv1.2".into()), None, EventKind::Resolve { committed: false });
        let tree = j.render_tree();
        assert!(tree.contains("span inv1.2 (orphan: parent inv1.0 not in journal)"), "orphan flagged:\n{tree}");
        assert!(tree.contains("resolve aborted"), "orphan's events still render:\n{tree}");
    }

    #[test]
    fn event_sink_sees_emission_order() {
        struct Labels(Vec<&'static str>);
        impl EventSink for Labels {
            fn on_event(&mut self, event: &TraceEvent) {
                self.0.push(event.kind.label());
            }
        }
        let labels = Rc::new(RefCell::new(Labels(Vec::new())));
        let sink: SharedSink = labels.clone();
        for e in sample().events() {
            sink.borrow_mut().on_event(e);
        }
        assert_eq!(labels.borrow().0, vec!["submit", "invoke", "serve", "resolve", "ack-send"]);
    }

    #[test]
    fn event_ring_evicts_oldest_and_counts_drops() {
        let mut ring = EventRing::new(3);
        for at in 0..5 {
            ring.push(TraceEvent {
                seq: at,
                at,
                peer: 0,
                epoch: 0,
                txn: None,
                span: None,
                parent: None,
                kind: EventKind::Gauge { name: "outbox_depth".into(), value: at },
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ats: Vec<u64> = ring.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![2, 3, 4], "oldest-first, oldest two evicted");
        let zero = EventRing::new(0);
        assert!(zero.is_empty() && zero.capacity() == 0);
    }

    #[test]
    fn gauge_kind_labels_and_renders() {
        let mut j = TraceJournal::default();
        j.record(100, 2, 0, None, None, None, EventKind::Gauge { name: "wal_bytes".into(), value: 4096 });
        assert_eq!(j.count("gauge"), 1);
        let text = j.to_json_lines();
        let back = TraceJournal::from_json_lines(&text).unwrap();
        assert_eq!(back, j, "gauge events survive the JSON round trip");
        assert!(j.render_tree().contains("gauge name=wal_bytes value=4096"));
    }

    #[test]
    fn sink_default_is_disabled() {
        assert!(!TraceSink::default().enabled());
        assert!(TraceSink::Memory.enabled());
    }
}
