//! Churn traces: scripted or randomly generated disconnect/reconnect
//! schedules.

use crate::ids::PeerId;
use crate::sim::{Actor, Message, Sim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When it happens.
    pub at: u64,
    /// Which peer.
    pub peer: PeerId,
    /// `true` = disconnect, `false` = reconnect.
    pub disconnect: bool,
}

/// A reproducible churn trace.
#[derive(Debug, Clone, Default)]
pub struct ChurnSchedule {
    /// The events, in generation order (the simulator orders by time).
    pub events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// An empty schedule.
    pub fn new() -> ChurnSchedule {
        ChurnSchedule::default()
    }

    /// Adds a disconnect.
    pub fn disconnect(mut self, at: u64, peer: PeerId) -> ChurnSchedule {
        self.events.push(ChurnEvent { at, peer, disconnect: true });
        self
    }

    /// Adds a reconnect.
    pub fn reconnect(mut self, at: u64, peer: PeerId) -> ChurnSchedule {
        self.events.push(ChurnEvent { at, peer, disconnect: false });
        self
    }

    /// Generates a random trace: each non-super peer independently
    /// disconnects with probability `p_disconnect` in every window of
    /// `window` time units over `[0, horizon)`, staying away for a random
    /// downtime in `[window/2, 2*window]`.
    ///
    /// `exempt` lists peers (e.g. super peers, the origin) never touched.
    pub fn random(
        seed: u64,
        peers: &[PeerId],
        exempt: &[PeerId],
        horizon: u64,
        window: u64,
        p_disconnect: f64,
    ) -> ChurnSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for &peer in peers {
            if exempt.contains(&peer) {
                continue;
            }
            let mut t = 0u64;
            while t < horizon {
                if rng.gen_bool(p_disconnect.clamp(0.0, 1.0)) {
                    let offset = rng.gen_range(0..window.max(1));
                    let down_at = t + offset;
                    let downtime = rng.gen_range(window.max(2) / 2..=window.max(1) * 2);
                    events.push(ChurnEvent { at: down_at, peer, disconnect: true });
                    events.push(ChurnEvent { at: down_at + downtime, peer, disconnect: false });
                    t = down_at + downtime;
                }
                t += window.max(1);
            }
        }
        ChurnSchedule { events }
    }

    /// Installs the trace into a simulator.
    pub fn install<M: Message, A: Actor<M>>(&self, sim: &mut Sim<M, A>) {
        for e in &self.events {
            if e.disconnect {
                sim.schedule_disconnect(e.at, e.peer);
            } else {
                sim.schedule_reconnect(e.at, e.peer);
            }
        }
    }

    /// Number of disconnect events.
    pub fn disconnect_count(&self) -> usize {
        self.events.iter().filter(|e| e.disconnect).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder() {
        let s = ChurnSchedule::new().disconnect(5, PeerId(1)).reconnect(10, PeerId(1));
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.disconnect_count(), 1);
    }

    #[test]
    fn random_is_deterministic() {
        let peers: Vec<PeerId> = (0..10).map(PeerId).collect();
        let a = ChurnSchedule::random(42, &peers, &[PeerId(0)], 1000, 100, 0.3);
        let b = ChurnSchedule::random(42, &peers, &[PeerId(0)], 1000, 100, 0.3);
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn random_respects_exemptions() {
        let peers: Vec<PeerId> = (0..10).map(PeerId).collect();
        let s = ChurnSchedule::random(1, &peers, &[PeerId(3)], 1000, 50, 0.9);
        assert!(s.events.iter().all(|e| e.peer != PeerId(3)));
    }

    #[test]
    fn zero_probability_means_no_events() {
        let peers: Vec<PeerId> = (0..5).map(PeerId).collect();
        let s = ChurnSchedule::random(1, &peers, &[], 1000, 50, 0.0);
        assert!(s.events.is_empty());
    }

    #[test]
    fn disconnects_paired_with_reconnects() {
        let peers: Vec<PeerId> = (0..8).map(PeerId).collect();
        let s = ChurnSchedule::random(9, &peers, &[], 500, 50, 0.5);
        let d = s.events.iter().filter(|e| e.disconnect).count();
        let r = s.events.iter().filter(|e| !e.disconnect).count();
        assert_eq!(d, r);
    }
}
