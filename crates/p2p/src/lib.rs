#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Deterministic discrete-event P2P substrate.
//!
//! The paper's protocols (§3.2, §3.3) are defined over an AXML peer
//! network with churn: "in true P2P style, we consider that the set of
//! peers in the AXML system keeps changing with peers joining and leaving
//! the system arbitrarily". A real 2007 deployment is neither available
//! nor necessary — the recovery and disconnection protocols depend only on
//! *who can talk to whom, when, with what latency, and who notices
//! failures when* (see DESIGN.md §2). This crate provides exactly that as
//! a seeded, fully deterministic simulation:
//!
//! - [`Sim`]: the event loop. Actors (one per peer) exchange typed
//!   messages with seeded latency; timers drive pings, retries, and
//!   subscription streams.
//! - Synchronous reachability: [`Ctx::send`] fails immediately with
//!   [`SendError::Unreachable`] when the target is disconnected — this is
//!   how AP6 "detects the disconnection of AP3 *while trying to return the
//!   results*" in scenario (b). Messages in flight when the target
//!   disconnects are dropped (detection then falls to timeouts).
//! - [`ChurnSchedule`]: scripted or randomly generated disconnect /
//!   reconnect events. **Super peers** ("trusted peers which do not
//!   disconnect") are exempt.
//! - [`PingMonitor`]: the keep-alive failure detector peers embed
//!   ("related P2P research relies on ping (or keep-alive) messages to
//!   detect peer disconnection").
//! - [`FaultPlane`]: seeded probabilistic and scripted per-link message
//!   drops, duplication, delay spikes, reordering, windowed partitions,
//!   and crash-restart events — the adversary the chaos harness sweeps
//!   and shrinks against.
//! - [`Directory`]: peer addressing (`peer://ap2` ↔ [`PeerId`]) and the
//!   replica registry used for forward recovery on replicated documents.

pub mod churn;
pub mod detect;
pub mod directory;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod sim;

pub use churn::{ChurnEvent, ChurnSchedule};
pub use detect::PingMonitor;
pub use directory::Directory;
pub use fault::{CrashEvent, FaultAction, FaultPlane, Partition, ScriptedFault, StorageFaultPlane};
pub use ids::{PeerId, TimerId};
pub use metrics::NetMetrics;
pub use sim::{Actor, Ctx, LatencyModel, Message, SendError, Sim, SimConfig};

// Re-exported so protocol layers and harnesses name one tracing surface.
pub use axml_trace::{EventKind, Snapshot, TraceEvent, TraceJournal, TraceSink};
