//! Peer addressing and the replica registry.
//!
//! "AXML documents (or fragments of the documents) and services may be
//! replicated on multiple peers." (§1) The directory records, per document
//! and per service, which peers host it — the information forward
//! recovery uses to "retry the invocation using a replicated peer" and
//! the paper's note that a redo peer "can only be a peer containing a
//! replicated copy of the affected AXML document".

use crate::ids::PeerId;
use std::collections::BTreeMap;

/// Where documents and services live.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    doc_replicas: BTreeMap<String, Vec<PeerId>>,
    service_providers: BTreeMap<String, Vec<PeerId>>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Registers a replica of `doc` on `peer`.
    pub fn add_doc_replica(&mut self, doc: impl Into<String>, peer: PeerId) {
        let entry = self.doc_replicas.entry(doc.into()).or_default();
        if !entry.contains(&peer) {
            entry.push(peer);
        }
    }

    /// Registers `peer` as a provider of `service`.
    pub fn add_service_provider(&mut self, service: impl Into<String>, peer: PeerId) {
        let entry = self.service_providers.entry(service.into()).or_default();
        if !entry.contains(&peer) {
            entry.push(peer);
        }
    }

    /// Peers hosting a replica of `doc`, in registration order.
    pub fn doc_replicas(&self, doc: &str) -> &[PeerId] {
        self.doc_replicas.get(doc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Peers providing `service`, in registration order.
    pub fn service_providers(&self, service: &str) -> &[PeerId] {
        self.service_providers.get(service).map(Vec::as_slice).unwrap_or(&[])
    }

    /// An alternative provider of `service`, excluding the given peers —
    /// the "alternative participant" used for forward recovery.
    pub fn alternative_provider(&self, service: &str, exclude: &[PeerId]) -> Option<PeerId> {
        self.service_providers(service).iter().copied().find(|p| !exclude.contains(p))
    }

    /// An alternative replica of `doc`, excluding the given peers.
    pub fn alternative_replica(&self, doc: &str, exclude: &[PeerId]) -> Option<PeerId> {
        self.doc_replicas(doc).iter().copied().find(|p| !exclude.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_registered_once() {
        let mut d = Directory::new();
        d.add_doc_replica("atp", PeerId(1));
        d.add_doc_replica("atp", PeerId(2));
        d.add_doc_replica("atp", PeerId(1));
        assert_eq!(d.doc_replicas("atp"), &[PeerId(1), PeerId(2)]);
        assert!(d.doc_replicas("other").is_empty());
    }

    #[test]
    fn alternative_provider_skips_excluded() {
        let mut d = Directory::new();
        d.add_service_provider("getPoints", PeerId(2));
        d.add_service_provider("getPoints", PeerId(5));
        assert_eq!(d.alternative_provider("getPoints", &[]), Some(PeerId(2)));
        assert_eq!(d.alternative_provider("getPoints", &[PeerId(2)]), Some(PeerId(5)));
        assert_eq!(d.alternative_provider("getPoints", &[PeerId(2), PeerId(5)]), None);
        assert_eq!(d.alternative_provider("unknown", &[]), None);
    }

    #[test]
    fn alternative_replica() {
        let mut d = Directory::new();
        d.add_doc_replica("atp", PeerId(1));
        d.add_doc_replica("atp", PeerId(7));
        assert_eq!(d.alternative_replica("atp", &[PeerId(1)]), Some(PeerId(7)));
    }
}
