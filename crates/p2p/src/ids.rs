//! Identifier types for the simulated fabric.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A peer in the simulated network. Displayed as `AP1`, `AP2`, … to match
/// the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The peer's canonical address in `serviceURL` form, e.g. `peer://ap3`.
    pub fn url(&self) -> String {
        format!("peer://ap{}", self.0)
    }

    /// Parses a `peer://apN` address.
    pub fn from_url(url: &str) -> Option<PeerId> {
        let rest = url.strip_prefix("peer://ap")?;
        rest.parse().ok().map(PeerId)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AP{}", self.0)
    }
}

/// A scheduled timer, unique within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(PeerId(5).to_string(), "AP5");
    }

    #[test]
    fn url_roundtrip() {
        let p = PeerId(3);
        assert_eq!(p.url(), "peer://ap3");
        assert_eq!(PeerId::from_url("peer://ap3"), Some(p));
        assert_eq!(PeerId::from_url("peer://x"), None);
        assert_eq!(PeerId::from_url("http://ap3"), None);
        assert_eq!(PeerId::from_url("peer://ap"), None);
    }
}
