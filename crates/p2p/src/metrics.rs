//! Network-level counters collected by the simulator.

use std::collections::BTreeMap;

/// Counters the experiment harness reads after a run.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    /// Messages successfully enqueued for delivery.
    pub sent: u64,
    /// Messages delivered to their target actor.
    pub delivered: u64,
    /// Sends that failed synchronously (target disconnected).
    pub send_failures: u64,
    /// In-flight messages dropped because the target disconnected before
    /// delivery.
    pub dropped_in_flight: u64,
    /// Messages by kind (see [`crate::Message::kind`]).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Timers fired.
    pub timers_fired: u64,
    /// Disconnect events applied.
    pub disconnects: u64,
    /// Reconnect events applied.
    pub reconnects: u64,
}

impl NetMetrics {
    /// Count of messages of one kind.
    pub fn kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_lookup_defaults_to_zero() {
        let mut m = NetMetrics::default();
        assert_eq!(m.kind("invoke"), 0);
        *m.by_kind.entry("invoke").or_default() += 3;
        assert_eq!(m.kind("invoke"), 3);
    }
}
