//! Network-level counters collected by the simulator.

use axml_trace::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counters the experiment harness reads after a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Messages successfully enqueued for delivery.
    pub sent: u64,
    /// Messages delivered to their target actor.
    pub delivered: u64,
    /// Sends that failed synchronously (target disconnected).
    pub send_failures: u64,
    /// In-flight messages dropped because the target disconnected before
    /// delivery.
    pub dropped_in_flight: u64,
    /// Messages by kind (see [`crate::Message::kind`]).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Timers fired.
    pub timers_fired: u64,
    /// Disconnect events applied.
    pub disconnects: u64,
    /// Reconnect events applied.
    pub reconnects: u64,
    /// Messages dropped by the fault plane (probabilistic, scripted, or
    /// partition).
    pub injected_drops: u64,
    /// Of [`Self::injected_drops`], those dropped by a partition window.
    pub partition_drops: u64,
    /// Messages duplicated by the fault plane.
    pub injected_dups: u64,
    /// Messages given a large delay spike by the fault plane.
    pub injected_spikes: u64,
    /// Messages given a small reordering delay by the fault plane.
    pub injected_reorders: u64,
    /// Deliveries that arrived behind a later-sent message on the same
    /// link (duplicate copies excluded).
    pub out_of_order: u64,
    /// Retransmissions sent by reliable-delivery protocol layers (see
    /// [`crate::Message::is_retransmit`]).
    pub retransmits: u64,
    /// Crash-restart events applied.
    pub crash_restarts: u64,
    /// Timer firings discarded because the peer crash-restarted after
    /// they were set.
    pub stale_timers: u64,
    /// Fault-plane drops by message kind.
    pub drops_by_kind: BTreeMap<&'static str, u64>,
    /// Fault-plane duplications by message kind.
    pub dups_by_kind: BTreeMap<&'static str, u64>,
    /// Retransmissions by message kind.
    pub retransmits_by_kind: BTreeMap<&'static str, u64>,
}

impl NetMetrics {
    /// Count of messages of one kind.
    pub fn kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Count of fault-plane drops of one kind.
    pub fn drops_of(&self, kind: &str) -> u64 {
        self.drops_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Count of fault-plane duplications of one kind.
    pub fn dups_of(&self, kind: &str) -> u64 {
        self.dups_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Count of retransmissions of one kind.
    pub fn retransmits_of(&self, kind: &str) -> u64 {
        self.retransmits_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Total faults injected by the plane (drops + dups + spikes +
    /// reorders).
    pub fn injected_total(&self) -> u64 {
        self.injected_drops + self.injected_dups + self.injected_spikes + self.injected_reorders
    }

    /// These counters as one flat registry snapshot (names scoped under
    /// `net.`), ready to merge with per-peer protocol stats into the
    /// unified view included in trace dumps.
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        s.set("net.sent", self.sent);
        s.set("net.delivered", self.delivered);
        s.set("net.send_failures", self.send_failures);
        s.set("net.dropped_in_flight", self.dropped_in_flight);
        s.set("net.timers_fired", self.timers_fired);
        s.set("net.disconnects", self.disconnects);
        s.set("net.reconnects", self.reconnects);
        s.set("net.injected_drops", self.injected_drops);
        s.set("net.partition_drops", self.partition_drops);
        s.set("net.injected_dups", self.injected_dups);
        s.set("net.injected_spikes", self.injected_spikes);
        s.set("net.injected_reorders", self.injected_reorders);
        s.set("net.out_of_order", self.out_of_order);
        s.set("net.retransmits", self.retransmits);
        s.set("net.crash_restarts", self.crash_restarts);
        s.set("net.stale_timers", self.stale_timers);
        for (k, v) in &self.by_kind {
            s.set(format!("net.sent.{k}"), *v);
        }
        for (k, v) in &self.drops_by_kind {
            s.set(format!("net.drops.{k}"), *v);
        }
        for (k, v) in &self.dups_by_kind {
            s.set(format!("net.dups.{k}"), *v);
        }
        for (k, v) in &self.retransmits_by_kind {
            s.set(format!("net.retransmits.{k}"), *v);
        }
        s
    }

    /// A human-readable multi-line summary, used by the chaos harness to
    /// make failing runs diagnosable.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "net: sent {} delivered {} send-failures {} dropped-in-flight {}",
            self.sent, self.delivered, self.send_failures, self.dropped_in_flight
        );
        let _ = writeln!(
            out,
            "faults: drops {} (partition {}) dups {} spikes {} reorders {} | out-of-order {} retransmits {} crash-restarts {}",
            self.injected_drops,
            self.partition_drops,
            self.injected_dups,
            self.injected_spikes,
            self.injected_reorders,
            self.out_of_order,
            self.retransmits,
            self.crash_restarts
        );
        let per_kind = |map: &BTreeMap<&'static str, u64>| {
            map.iter().map(|(k, v)| format!("{k} {v}")).collect::<Vec<_>>().join(", ")
        };
        let _ = writeln!(out, "by kind: {}", per_kind(&self.by_kind));
        if !self.drops_by_kind.is_empty() {
            let _ = writeln!(out, "drops by kind: {}", per_kind(&self.drops_by_kind));
        }
        if !self.dups_by_kind.is_empty() {
            let _ = writeln!(out, "dups by kind: {}", per_kind(&self.dups_by_kind));
        }
        if !self.retransmits_by_kind.is_empty() {
            let _ = writeln!(out, "retransmits by kind: {}", per_kind(&self.retransmits_by_kind));
        }
        let _ = write!(
            out,
            "churn: timers {} (stale {}) disconnects {} reconnects {}",
            self.timers_fired, self.stale_timers, self.disconnects, self.reconnects
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_lookup_defaults_to_zero() {
        let mut m = NetMetrics::default();
        assert_eq!(m.kind("invoke"), 0);
        *m.by_kind.entry("invoke").or_default() += 3;
        assert_eq!(m.kind("invoke"), 3);
    }

    #[test]
    fn fault_counters_default_to_zero_and_total() {
        let mut m = NetMetrics::default();
        assert_eq!(m.injected_total(), 0);
        assert_eq!(m.drops_of("invoke"), 0);
        m.injected_drops = 2;
        m.injected_dups = 1;
        *m.drops_by_kind.entry("invoke").or_default() += 2;
        *m.dups_by_kind.entry("result").or_default() += 1;
        assert_eq!(m.injected_total(), 3);
        assert_eq!(m.drops_of("invoke"), 2);
        assert_eq!(m.dups_of("result"), 1);
    }

    #[test]
    fn snapshot_scopes_names_under_net() {
        let mut m = NetMetrics::default();
        m.sent = 9;
        m.retransmits = 2;
        *m.by_kind.entry("invoke").or_default() += 4;
        *m.retransmits_by_kind.entry("invoke").or_default() += 2;
        let s = m.snapshot();
        assert_eq!(s.get("net.sent"), 9);
        assert_eq!(s.get("net.sent.invoke"), 4);
        assert_eq!(s.get("net.retransmits.invoke"), 2);
        assert_eq!(s.get("net.drops.invoke"), 0);
    }

    #[test]
    fn accessors_over_a_mixed_fault_trace() {
        // Drive a real simulation through a scripted mixed fault plane
        // (drop + duplicate + spike + reorder, two message kinds, one of
        // them a protocol retransmission) and check every accessor
        // against the known script rather than hand-set counters.
        use crate::fault::{FaultAction, FaultPlane, ScriptedFault};
        use crate::sim::{Actor, Ctx, Message, Sim, SimConfig};
        use crate::PeerId;

        // The payloads exist to give each send a distinct body, as a
        // real protocol message would have; nothing reads them back.
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum M {
            Op(u64),
            Redo(u64),
        }
        impl Message for M {
            fn kind(&self) -> &'static str {
                match self {
                    M::Op(_) => "op",
                    M::Redo(_) => "redo",
                }
            }
            fn is_retransmit(&self) -> bool {
                matches!(self, M::Redo(_))
            }
        }
        struct Src;
        impl Actor<M> for Src {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, M>, _from: PeerId, _msg: M) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) {
                let msg = if tag.is_multiple_of(2) { M::Op(tag) } else { M::Redo(tag) };
                let _ = ctx.send(PeerId(1), msg);
            }
        }

        let fault = |kind: &str, nth: u64, action: FaultAction| ScriptedFault {
            from: PeerId(0),
            to: PeerId(1),
            kind: kind.to_string(),
            nth,
            action,
        };
        let mut config = SimConfig::default();
        config.fault = FaultPlane::scripted(vec![
            fault("op", 0, FaultAction::Drop),
            fault("op", 1, FaultAction::Duplicate { extra: 3 }),
            fault("redo", 0, FaultAction::Spike { extra: 40 }),
            fault("redo", 1, FaultAction::Reorder { extra: 2 }),
        ]);
        let mut s = Sim::new(config, vec![Src, Src]);
        for t in 0..6 {
            // tags 0..5 alternate op/redo → 3 sends of each kind
            s.schedule_timer(10 * t, PeerId(0), t);
        }
        s.run();

        let m = s.metrics();
        assert_eq!(m.kind("op"), 3);
        assert_eq!(m.kind("redo"), 3);
        assert_eq!(m.kind("absent"), 0);
        assert_eq!(m.drops_of("op"), 1);
        assert_eq!(m.drops_of("redo"), 0);
        assert_eq!(m.dups_of("op"), 1);
        assert_eq!(m.dups_of("redo"), 0);
        assert_eq!(m.retransmits_of("redo"), 3);
        assert_eq!(m.retransmits_of("op"), 0);
        assert_eq!(m.retransmits, 3);
        assert_eq!(m.injected_total(), 4, "drop + dup + spike + reorder all counted");
        assert_eq!((m.injected_drops, m.injected_dups, m.injected_spikes, m.injected_reorders), (1, 1, 1, 1));
        assert_eq!(m.sent, 6);
        assert_eq!(m.delivered, 6, "6 sent − 1 dropped + 1 duplicate copy");
        assert_eq!(s.fault_trace().len(), 4, "every scripted fault fired");

        let snap = m.snapshot();
        assert_eq!(snap.get("net.drops.op"), 1);
        assert_eq!(snap.get("net.dups.op"), 1);
        assert_eq!(snap.get("net.retransmits.redo"), 3);

        let text = m.summary();
        assert!(text.contains("drops by kind: op 1"), "{text}");
        assert!(text.contains("dups by kind: op 1"), "{text}");
        assert!(text.contains("retransmits by kind: redo 3"), "{text}");
    }

    #[test]
    fn summary_mentions_fault_lines_only_when_present() {
        let mut m = NetMetrics::default();
        m.sent = 4;
        let s = m.summary();
        assert!(s.contains("sent 4"));
        assert!(!s.contains("drops by kind"));
        *m.drops_by_kind.entry("invoke").or_default() += 1;
        *m.retransmits_by_kind.entry("invoke").or_default() += 2;
        let s = m.summary();
        assert!(s.contains("drops by kind: invoke 1"));
        assert!(s.contains("retransmits by kind: invoke 2"));
    }
}
