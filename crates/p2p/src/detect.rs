//! Keep-alive failure detection.
//!
//! "Related P2P research relies on ping (or keep-alive) messages to detect
//! peer disconnection." (§3.3) A [`PingMonitor`] is the bookkeeping a peer
//! embeds to watch a set of peers: it tells the protocol when to ping and
//! which peers have been silent past the timeout. The actual ping/pong
//! messages are the embedding protocol's own message variants.

use crate::ids::PeerId;
use std::collections::BTreeMap;

/// Tracks last-heard times for a set of watched peers.
#[derive(Debug, Clone)]
pub struct PingMonitor {
    /// How often to send pings.
    pub interval: u64,
    /// Silence longer than this declares the peer disconnected.
    pub timeout: u64,
    watched: BTreeMap<PeerId, u64>, // last heard-from time
}

impl PingMonitor {
    /// A monitor with the given ping interval and timeout.
    pub fn new(interval: u64, timeout: u64) -> PingMonitor {
        PingMonitor { interval, timeout, watched: BTreeMap::new() }
    }

    /// Starts watching a peer (counts as heard-from at `now`).
    ///
    /// Re-watching an already-watched peer resets its silence clock to
    /// `now` — so a peer that was about to be declared suspect gets a
    /// full fresh timeout window.
    pub fn watch(&mut self, peer: PeerId, now: u64) {
        self.watched.insert(peer, now);
    }

    /// Stops watching a peer.
    pub fn unwatch(&mut self, peer: PeerId) {
        self.watched.remove(&peer);
    }

    /// Records any message (ping reply or payload) from a watched peer.
    pub fn heard_from(&mut self, peer: PeerId, now: u64) {
        if let Some(t) = self.watched.get_mut(&peer) {
            *t = now;
        }
    }

    /// Peers silent past the timeout as of `now`.
    ///
    /// The comparison is strict: a peer whose silence equals the timeout
    /// exactly is *not* yet suspect — suspicion needs `now - last_heard`
    /// to strictly exceed `timeout`. This keeps a peer that answers
    /// every ping at precisely the timeout cadence permanently healthy
    /// instead of flapping on the boundary.
    pub fn suspects(&self, now: u64) -> Vec<PeerId> {
        let mut out = Vec::new();
        self.suspects_into(now, &mut out);
        out
    }

    /// Like [`Self::suspects`], but reuses `out` (cleared first) instead
    /// of allocating a fresh `Vec` — the embedding protocol's ping tick
    /// calls this every interval on every peer, so the allocation is
    /// pure churn. Same strict-`>` boundary as [`Self::suspects`].
    pub fn suspects_into(&self, now: u64, out: &mut Vec<PeerId>) {
        out.clear();
        out.extend(self.watched.iter().filter(|(_, &last)| now.saturating_sub(last) > self.timeout).map(|(&p, _)| p));
    }

    /// Peers currently watched.
    pub fn watched(&self) -> Vec<PeerId> {
        self.watched.keys().copied().collect()
    }

    /// True if `peer` is watched.
    pub fn is_watching(&self, peer: PeerId) -> bool {
        self.watched.contains_key(&peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_past_timeout_raises_suspicion() {
        let mut m = PingMonitor::new(10, 25);
        m.watch(PeerId(3), 0);
        m.watch(PeerId(4), 0);
        assert!(m.suspects(20).is_empty());
        m.heard_from(PeerId(3), 20);
        assert_eq!(m.suspects(30), vec![PeerId(4)]);
        assert_eq!(m.suspects(50), vec![PeerId(3), PeerId(4)]);
    }

    #[test]
    fn heard_from_unwatched_is_noop() {
        let mut m = PingMonitor::new(10, 25);
        m.heard_from(PeerId(9), 5);
        assert!(m.suspects(1000).is_empty());
        assert!(!m.is_watching(PeerId(9)));
    }

    #[test]
    fn unwatch_clears_suspicion() {
        let mut m = PingMonitor::new(10, 25);
        m.watch(PeerId(1), 0);
        assert_eq!(m.suspects(100), vec![PeerId(1)]);
        m.unwatch(PeerId(1));
        assert!(m.suspects(100).is_empty());
    }

    #[test]
    fn exact_timeout_boundary_is_not_suspect() {
        let mut m = PingMonitor::new(10, 25);
        m.watch(PeerId(1), 0);
        assert!(m.suspects(25).is_empty(), "strictly-greater comparison");
        assert_eq!(m.suspects(26), vec![PeerId(1)]);
    }

    #[test]
    fn suspects_into_reuses_buffer_with_identical_boundary() {
        // The reusable-buffer variant must agree with `suspects` at and
        // around the strict-`>` timeout boundary, and must clear stale
        // contents from the buffer it is handed.
        let mut m = PingMonitor::new(10, 25);
        m.watch(PeerId(1), 0);
        m.watch(PeerId(2), 10);
        let mut buf = vec![PeerId(99)]; // stale garbage to be cleared
        for now in [24, 25, 26, 35, 36, 1000] {
            m.suspects_into(now, &mut buf);
            assert_eq!(buf, m.suspects(now), "now={now}");
        }
        assert!(!buf.contains(&PeerId(99)));
        m.suspects_into(25, &mut buf);
        assert!(buf.is_empty(), "exact timeout is not yet suspect");
        m.suspects_into(26, &mut buf);
        assert_eq!(buf, vec![PeerId(1)], "one tick past the timeout is");
    }

    #[test]
    fn rewatch_resets_suspicion_clock() {
        let mut m = PingMonitor::new(10, 25);
        m.watch(PeerId(1), 0);
        assert_eq!(m.suspects(26), vec![PeerId(1)]);
        // Watching again (e.g. a second invocation on the same child)
        // counts as heard-from: the suspect gets a fresh window.
        m.watch(PeerId(1), 26);
        assert!(m.suspects(51).is_empty(), "window restarts at the re-watch");
        assert_eq!(m.suspects(52), vec![PeerId(1)]);
    }

    #[test]
    fn watched_list() {
        let mut m = PingMonitor::new(5, 10);
        m.watch(PeerId(2), 0);
        m.watch(PeerId(1), 0);
        assert_eq!(m.watched(), vec![PeerId(1), PeerId(2)]);
    }
}
