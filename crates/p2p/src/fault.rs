//! Deterministic fault injection for the simulated network.
//!
//! The paper's recovery protocol (§3.2–3.3) is specified over an
//! unreliable P2P fabric, but the base simulator only models latency
//! jitter and disconnection. A [`FaultPlane`] adds the rest of the
//! adversary — per-link message **drops**, **duplication**, extra-delay
//! **spikes**, small-delay **reordering**, windowed symmetric
//! **partitions**, and **crash-restart** events — all driven by a seed
//! that is independent of the latency seed, so the same protocol run can
//! be re-executed under a different fault schedule (and vice versa).
//!
//! Faults come in two forms that share one vocabulary:
//!
//! - **Probabilistic**: each send draws against `drop_prob`, `dup_prob`,
//!   `reorder_prob`, `spike_prob` from the plane's own seeded RNG.
//! - **Scripted**: a list of [`ScriptedFault`]s, each naming the *nth*
//!   message of a given kind on a given link and a concrete
//!   [`FaultAction`] (with concrete delays — no RNG needed at replay).
//!
//! Every injected per-message fault is recorded into a **trace** of
//! `ScriptedFault`s (readable via [`crate::Sim::fault_trace`]). Replaying
//! with the probabilities zeroed and the trace as the script reproduces
//! the exact same run — the property the chaos harness's shrinker relies
//! on to minimize a failing fault schedule to a printable reproducer.

use crate::ids::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What to do to one matched message. Delays are concrete so a scripted
/// replay needs no randomness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Silently drop the message (it was "sent" from the sender's view).
    Drop,
    /// Deliver the message normally *and* deliver a copy `extra` time
    /// units after the original — the at-least-once hazard.
    Duplicate {
        /// Additional delay of the duplicate copy past the original.
        extra: u64,
    },
    /// Add `extra` to the delivery latency — large values (past ping
    /// timeouts) make healthy peers look dead.
    Spike {
        /// Additional delivery delay.
        extra: u64,
    },
    /// Add a *small* `extra` to the delivery latency — enough to swap
    /// this message past later traffic on the same link without tripping
    /// failure detectors.
    Reorder {
        /// Additional delivery delay.
        extra: u64,
    },
}

/// A fault applied to the `nth` (0-based) message of `kind` sent from
/// `from` to `to`, counting every send on that link of that kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// Sender of the targeted message.
    pub from: PeerId,
    /// Receiver of the targeted message.
    pub to: PeerId,
    /// The message kind label ([`crate::Message::kind`]).
    pub kind: String,
    /// 0-based occurrence index among `(from, to, kind)` sends.
    pub nth: u64,
    /// What to do to the matched message.
    pub action: FaultAction,
}

/// A symmetric network partition: while `start <= now < end`, messages
/// between group `a` and group `b` are silently dropped (in both
/// directions). Sends still *succeed* synchronously — partitions are
/// invisible to the sender, unlike disconnection — so they exercise
/// retransmission and failure detection rather than the synchronous
/// error path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Window start (inclusive).
    pub start: u64,
    /// Window end (exclusive).
    pub end: u64,
    /// One side of the cut.
    pub a: Vec<PeerId>,
    /// The other side of the cut.
    pub b: Vec<PeerId>,
}

impl Partition {
    /// True if this partition separates `x` from `y` at time `now`.
    pub fn cuts(&self, now: u64, x: PeerId, y: PeerId) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        (self.a.contains(&x) && self.b.contains(&y)) || (self.a.contains(&y) && self.b.contains(&x))
    }
}

/// A scheduled crash-restart: at time `at`, the peer's volatile actor
/// state is wiped and rebuilt from its durability journal (the actor's
/// [`crate::Actor::on_crash_restart`] hook).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// When the crash happens.
    pub at: u64,
    /// The peer that crashes and immediately restarts.
    pub peer: PeerId,
}

/// Storage (WAL) fault knobs, applied by a durability sink that holds a
/// copy of this plane. Unlike the network knobs these never act on
/// messages: they decide the fate of journal *appends* and what garbage a
/// crash leaves on disk.
///
/// All faults are **prospective** — an append either becomes durable and
/// is acknowledged, or fails and is reported before any consequence
/// escapes. Durable acknowledged entries are never retroactively lost
/// (that would break the atomicity oracle: an applied-but-unlogged effect
/// can never be compensated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageFaultPlane {
    /// Per-append probability of a torn write: a prefix of the frame's
    /// bytes reaches the segment, the append reports failure, and the
    /// writer heals (truncates the torn bytes) before its next append. A
    /// crash before the heal leaves the torn frame for recovery's
    /// torn-tail rule to discard.
    pub torn_append_prob: f64,
    /// Per-append probability of a sync failure: nothing reaches the
    /// segment and the append reports failure (clean rollback).
    pub sync_failure_prob: f64,
    /// On crash, append a short burst of seeded garbage bytes to the tail
    /// segment — the partial-segment artifact recovery must discard.
    pub partial_segment_on_crash: bool,
}

impl Default for StorageFaultPlane {
    fn default() -> Self {
        StorageFaultPlane { torn_append_prob: 0.0, sync_failure_prob: 0.0, partial_segment_on_crash: false }
    }
}

impl StorageFaultPlane {
    /// True if this plane can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.torn_append_prob == 0.0 && self.sync_failure_prob == 0.0 && !self.partial_segment_on_crash
    }
}

/// The full fault schedule for one simulation run: probabilistic knobs,
/// scripted per-message faults, partitions, crash-restarts, and storage
/// faults.
///
/// The default plane is inert (all probabilities zero, no script) so
/// existing simulations are byte-for-byte unaffected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlane {
    /// Seed for the fault RNG — independent of the latency seed.
    pub seed: u64,
    /// Per-message probability of a silent drop.
    pub drop_prob: f64,
    /// Per-message probability of duplication.
    pub dup_prob: f64,
    /// Delay range `(lo, hi)` for the duplicate copy, inclusive.
    pub dup_extra: (u64, u64),
    /// Per-message probability of a large delay spike.
    pub spike_prob: f64,
    /// Extra-delay range `(lo, hi)` for spikes, inclusive.
    pub spike_extra: (u64, u64),
    /// Per-message probability of a small reordering delay.
    pub reorder_prob: f64,
    /// Extra-delay range `(lo, hi)` for reordering, inclusive.
    pub reorder_extra: (u64, u64),
    /// Windowed symmetric partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash-restart events.
    pub crashes: Vec<CrashEvent>,
    /// Scripted per-message faults (each consumed at most once).
    pub script: Vec<ScriptedFault>,
    /// Storage (WAL) fault knobs, consumed by the durability sinks the
    /// harness attaches to each peer — the network runtime ignores them.
    pub storage: StorageFaultPlane,
}

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            dup_extra: (1, 8),
            spike_prob: 0.0,
            spike_extra: (40, 120),
            reorder_prob: 0.0,
            reorder_extra: (1, 10),
            partitions: Vec::new(),
            crashes: Vec::new(),
            script: Vec::new(),
            storage: StorageFaultPlane::default(),
        }
    }
}

impl FaultPlane {
    /// A plane with the given probabilistic knobs and default delay
    /// ranges; no partitions, crashes, or script.
    pub fn probabilistic(seed: u64, drop: f64, dup: f64, reorder: f64, spike: f64) -> FaultPlane {
        FaultPlane {
            seed,
            drop_prob: drop,
            dup_prob: dup,
            reorder_prob: reorder,
            spike_prob: spike,
            ..FaultPlane::default()
        }
    }

    /// A purely scripted plane (all probabilities zero) — the shape the
    /// shrinker emits as a minimal reproducer.
    pub fn scripted(script: Vec<ScriptedFault>) -> FaultPlane {
        FaultPlane { script, ..FaultPlane::default() }
    }

    /// True if the plane can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.spike_prob == 0.0
            && self.reorder_prob == 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.script.is_empty()
            && self.storage.is_inert()
    }
}

/// What the plane decided to do to one send (internal to the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Injected {
    /// Dropped by a partition window (not recorded in the trace — the
    /// partition itself is already a scripted artifact).
    PartitionDrop,
    /// Dropped by script or probability.
    Drop,
    /// Duplicated; the copy lands `extra` after the original.
    Duplicate { extra: u64 },
    /// Delayed by `extra` (large, failure-detector scale).
    Spike { extra: u64 },
    /// Delayed by `extra` (small, ordering scale).
    Reorder { extra: u64 },
}

/// Live injection state owned by the simulator: the plane plus its RNG,
/// per-link-kind occurrence counters, script consumption, and the trace
/// of everything injected so far.
pub(crate) struct FaultRuntime {
    plane: FaultPlane,
    rng: StdRng,
    // `BTreeMap`, not `HashMap`: the runtime is part of the seeded
    // deterministic substrate, and ordered maps keep every walk over it
    // (present or future) independent of per-process hash seeds.
    sends: BTreeMap<(PeerId, PeerId, &'static str), u64>,
    consumed: Vec<bool>,
    trace: Vec<ScriptedFault>,
    inert: bool,
}

impl FaultRuntime {
    pub(crate) fn new(plane: FaultPlane) -> FaultRuntime {
        let inert = plane.is_inert();
        let consumed = vec![false; plane.script.len()];
        let rng = StdRng::seed_from_u64(plane.seed);
        FaultRuntime { plane, rng, sends: BTreeMap::new(), consumed, trace: Vec::new(), inert }
    }

    pub(crate) fn plane(&self) -> &FaultPlane {
        &self.plane
    }

    pub(crate) fn trace(&self) -> &[ScriptedFault] {
        &self.trace
    }

    /// Decides the fate of one send. Advances the per-link-kind
    /// occurrence counter; scripted faults take precedence over
    /// probabilistic draws; anything injected (partitions aside) is
    /// appended to the trace.
    pub(crate) fn on_send(&mut self, now: u64, from: PeerId, to: PeerId, kind: &'static str) -> Option<Injected> {
        if self.inert || from == to {
            // Loopback sends never cross the network: a peer invoking its
            // own local service cannot lose the message.
            return None;
        }
        let nth = {
            let counter = self.sends.entry((from, to, kind)).or_insert(0);
            let nth = *counter;
            *counter += 1;
            nth
        };
        if self.plane.partitions.iter().any(|p| p.cuts(now, from, to)) {
            return Some(Injected::PartitionDrop);
        }
        // Scripted faults first: exact (link, kind, nth) match, consumed once.
        for (i, f) in self.plane.script.iter().enumerate() {
            if !self.consumed[i] && f.from == from && f.to == to && f.nth == nth && f.kind == kind {
                self.consumed[i] = true;
                let injected = match f.action {
                    FaultAction::Drop => Injected::Drop,
                    FaultAction::Duplicate { extra } => Injected::Duplicate { extra },
                    FaultAction::Spike { extra } => Injected::Spike { extra },
                    FaultAction::Reorder { extra } => Injected::Reorder { extra },
                };
                self.record(from, to, kind, nth, f.action);
                return Some(injected);
            }
        }
        // Probabilistic draws, in a fixed order (first hit wins).
        if self.plane.drop_prob > 0.0 && self.rng.gen_bool(self.plane.drop_prob) {
            self.record(from, to, kind, nth, FaultAction::Drop);
            return Some(Injected::Drop);
        }
        if self.plane.dup_prob > 0.0 && self.rng.gen_bool(self.plane.dup_prob) {
            let (lo, hi) = self.plane.dup_extra;
            let extra = self.rng.gen_range(lo..=hi);
            self.record(from, to, kind, nth, FaultAction::Duplicate { extra });
            return Some(Injected::Duplicate { extra });
        }
        if self.plane.reorder_prob > 0.0 && self.rng.gen_bool(self.plane.reorder_prob) {
            let (lo, hi) = self.plane.reorder_extra;
            let extra = self.rng.gen_range(lo..=hi);
            self.record(from, to, kind, nth, FaultAction::Reorder { extra });
            return Some(Injected::Reorder { extra });
        }
        if self.plane.spike_prob > 0.0 && self.rng.gen_bool(self.plane.spike_prob) {
            let (lo, hi) = self.plane.spike_extra;
            let extra = self.rng.gen_range(lo..=hi);
            self.record(from, to, kind, nth, FaultAction::Spike { extra });
            return Some(Injected::Spike { extra });
        }
        None
    }

    fn record(&mut self, from: PeerId, to: PeerId, kind: &'static str, nth: u64, action: FaultAction) {
        self.trace.push(ScriptedFault { from, to, kind: kind.to_string(), nth, action });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plane_is_inert() {
        assert!(FaultPlane::default().is_inert());
        assert!(FaultRuntime::new(FaultPlane::default()).on_send(0, PeerId(1), PeerId(2), "invoke").is_none());
    }

    #[test]
    fn scripted_fault_hits_exact_occurrence_once() {
        let plane = FaultPlane::scripted(vec![ScriptedFault {
            from: PeerId(1),
            to: PeerId(2),
            kind: "invoke".into(),
            nth: 1,
            action: FaultAction::Drop,
        }]);
        let mut rt = FaultRuntime::new(plane);
        assert_eq!(rt.on_send(0, PeerId(1), PeerId(2), "invoke"), None); // nth 0
        assert_eq!(rt.on_send(0, PeerId(1), PeerId(2), "result"), None); // other kind
        assert_eq!(rt.on_send(0, PeerId(1), PeerId(2), "invoke"), Some(Injected::Drop)); // nth 1
        assert_eq!(rt.on_send(0, PeerId(1), PeerId(2), "invoke"), None); // consumed
        assert_eq!(rt.trace().len(), 1);
    }

    #[test]
    fn loopback_sends_are_never_faulted() {
        let plane = FaultPlane::probabilistic(3, 1.0, 0.0, 0.0, 0.0);
        let mut rt = FaultRuntime::new(plane);
        assert_eq!(rt.on_send(0, PeerId(1), PeerId(1), "invoke"), None);
        assert_eq!(rt.on_send(0, PeerId(1), PeerId(2), "invoke"), Some(Injected::Drop));
    }

    #[test]
    fn partition_cuts_both_directions_inside_window_only() {
        let p = Partition { start: 10, end: 20, a: vec![PeerId(1)], b: vec![PeerId(2), PeerId(3)] };
        assert!(p.cuts(10, PeerId(1), PeerId(2)));
        assert!(p.cuts(15, PeerId(3), PeerId(1)));
        assert!(!p.cuts(9, PeerId(1), PeerId(2)));
        assert!(!p.cuts(20, PeerId(1), PeerId(2)), "end exclusive");
        assert!(!p.cuts(15, PeerId(2), PeerId(3)), "same side");
    }

    #[test]
    fn probabilistic_trace_replays_as_script() {
        // Run a message stream through a lossy plane, then replay the
        // recorded trace as a script: the injected faults must be
        // identical, with no RNG involved the second time.
        let plane = FaultPlane::probabilistic(42, 0.2, 0.2, 0.1, 0.1);
        let mut rt = FaultRuntime::new(plane);
        let mut first = Vec::new();
        for i in 0..200u32 {
            let from = PeerId(i % 3);
            let to = PeerId((i + 1) % 3);
            let kind = if i.is_multiple_of(2) { "invoke" } else { "result" };
            first.push(rt.on_send(0, from, to, kind));
        }
        assert!(rt.trace().iter().any(|f| f.action == FaultAction::Drop), "seed produced drops");
        let mut replay = FaultRuntime::new(FaultPlane::scripted(rt.trace().to_vec()));
        for (i, expected) in first.iter().enumerate() {
            let i = i as u32;
            let from = PeerId(i % 3);
            let to = PeerId((i + 1) % 3);
            let kind = if i.is_multiple_of(2) { "invoke" } else { "result" };
            assert_eq!(replay.on_send(0, from, to, kind), *expected, "send {i}");
        }
        assert_eq!(replay.trace(), rt.trace());
    }

    #[test]
    fn storage_plane_activates_and_roundtrips() {
        let mut plane = FaultPlane::default();
        assert!(plane.storage.is_inert());
        assert!(plane.is_inert());
        plane.storage.torn_append_prob = 0.1;
        assert!(!plane.is_inert(), "a storage-faulting plane is not inert");
        plane.storage.sync_failure_prob = 0.2;
        plane.storage.partial_segment_on_crash = true;
        let text = serde_json::to_string(&plane).expect("serialize");
        let back: FaultPlane = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, plane);
    }

    #[test]
    fn plane_roundtrips_through_json() {
        let mut plane = FaultPlane::probabilistic(9, 0.1, 0.0, 0.0, 0.05);
        plane.partitions.push(Partition { start: 5, end: 50, a: vec![PeerId(1)], b: vec![PeerId(2)] });
        plane.crashes.push(CrashEvent { at: 30, peer: PeerId(4) });
        plane.script.push(ScriptedFault {
            from: PeerId(1),
            to: PeerId(2),
            kind: "invoke".into(),
            nth: 0,
            action: FaultAction::Duplicate { extra: 3 },
        });
        let text = serde_json::to_string(&plane).expect("serialize");
        let back: FaultPlane = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, plane);
    }
}
