//! The discrete-event simulator.
//!
//! One [`Actor`] per peer; events are message deliveries, timer firings,
//! churn (disconnect/reconnect), and fault-plane crash-restarts.
//! Everything is driven by seeded RNGs and a logical clock, so every run
//! is exactly reproducible — the property that lets the test suite assert
//! precise message sequences for the paper's Fig. 1 and Fig. 2 scenarios,
//! and that lets the chaos harness shrink a failing fault schedule to a
//! scripted reproducer (see [`crate::fault`]).

use crate::fault::{CrashEvent, FaultPlane, FaultRuntime, Injected, ScriptedFault};
use crate::ids::{PeerId, TimerId};
use crate::metrics::NetMetrics;
use axml_trace::{EventKind, SharedSink, TraceEvent, TraceJournal, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Messages exchanged between actors.
pub trait Message: Clone + fmt::Debug {
    /// A short label used for per-kind metrics.
    fn kind(&self) -> &'static str {
        "msg"
    }

    /// True if this message is a protocol-level retransmission of an
    /// earlier send (counted separately in [`NetMetrics::retransmits`]).
    fn is_retransmit(&self) -> bool {
        false
    }
}

/// A peer's protocol logic.
pub trait Actor<M: Message> {
    /// A message arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: PeerId, msg: M);

    /// A timer set via [`Ctx::set_timer`] (or [`Sim::schedule_timer`]) fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64);

    /// The peer just reconnected after a disconnection (optional hook).
    fn on_reconnect(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// The peer crashed and instantly restarted (optional hook). All
    /// timers set before the crash are dead (the simulator discards them
    /// by incarnation); the actor must wipe its volatile state and
    /// rebuild from whatever it journaled durably.
    fn on_crash_restart(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Reports instantaneous gauge readings for the time-series sampler
    /// (optional hook). Called at fixed sim-time window boundaries when
    /// [`SimConfig::sample_interval`] is nonzero and a trace sink or
    /// observer is attached; push `(metric, value)` pairs in a fixed
    /// order (the order becomes the emission order of the gauge events).
    /// Read-only by design: sampling must never perturb the schedule.
    fn sample_gauges(&self, _out: &mut Vec<(&'static str, u64)>) {}
}

/// Why a send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The target peer is disconnected *right now* — the synchronous
    /// detection path of §3.3 ("AP6 detects the disconnection of AP3 while
    /// trying to return the results").
    Unreachable(PeerId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Unreachable(p) => write!(f, "peer {p} is unreachable"),
        }
    }
}

impl std::error::Error for SendError {}

/// Message latency: uniform in `[min, max]` time units, seeded.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Minimum delivery delay.
    pub min: u64,
    /// Maximum delivery delay (inclusive).
    pub max: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel { min: 1, max: 5 }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed (drives latency jitter).
    pub seed: u64,
    /// Latency model.
    pub latency: LatencyModel,
    /// Hard cap on processed events (runaway-protocol guard).
    pub max_events: u64,
    /// Fault schedule (inert by default; see [`crate::fault`]).
    pub fault: FaultPlane,
    /// Lifecycle-event sink (disabled by default — see [`axml_trace`]).
    /// Tracing shares the fault plane's determinism: enabling it never
    /// perturbs the event schedule, so a scripted replay yields a
    /// byte-identical journal.
    pub trace: TraceSink,
    /// Gauge-sampling window width in sim-time units (0 = sampling off,
    /// the default). When nonzero and a trace sink or observer is
    /// attached, the simulator emits one [`EventKind::Gauge`] event per
    /// `(peer, metric)` at every window boundary `k * sample_interval`,
    /// stamped at the boundary time and reflecting the state after all
    /// events at times `<=` the boundary. Sampling is observation-only:
    /// it reads actors through [`Actor::sample_gauges`] and never
    /// touches the RNG or the event queue, so enabling it cannot change
    /// the schedule.
    pub sample_interval: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 7,
            latency: LatencyModel::default(),
            max_events: 1_000_000,
            fault: FaultPlane::default(),
            trace: TraceSink::default(),
            sample_interval: 0,
        }
    }
}

enum Event<M> {
    Deliver { from: PeerId, to: PeerId, msg: M, link_seq: u64, dup: bool },
    Timer { peer: PeerId, id: TimerId, tag: u64, inc: u64 },
    Disconnect(PeerId),
    Reconnect(PeerId),
    CrashRestart(PeerId),
}

struct Scheduled<M> {
    at: u64,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Shared simulator state, accessed by actors through [`Ctx`].
pub struct SimState<M> {
    now: u64,
    seq: u64,
    next_timer: u64,
    queue: BinaryHeap<Scheduled<M>>,
    connected: Vec<bool>,
    super_peer: Vec<bool>,
    incarnation: Vec<u64>,
    cancelled: HashSet<u64>,
    rng: StdRng,
    latency: LatencyModel,
    max_events: u64,
    fault: FaultRuntime,
    /// Peer count; `(from, to)` links index the dense counters below as
    /// `from * peers + to`. Dense vectors instead of hash maps for two
    /// reasons at once: the per-send/per-delivery lookup on the hot path
    /// costs an index instead of a hash, and iteration order (should a
    /// report ever walk the links) is fixed — never the per-process
    /// random order a `HashMap` would give.
    peers: usize,
    /// Messages sent per link (the link sequence counter).
    link_sent: Vec<u64>,
    /// Per link: highest delivered sequence + 1 (0 = nothing delivered
    /// yet), the out-of-order watermark.
    link_delivered: Vec<u64>,
    trace: Option<TraceJournal>,
    observers: Vec<SharedSink>,
    emitted: u64,
    sample_interval: u64,
    /// Next unsampled window boundary (only meaningful when sampling).
    next_sample: u64,
    /// Counters, readable after the run.
    pub metrics: NetMetrics,
}

impl<M: Message> SimState<M> {
    fn schedule(&mut self, at: u64, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Substrate-level emission (churn/crash events the simulator itself
    /// observes, not any one actor).
    fn emit_sim(&mut self, peer: PeerId, kind: EventKind) {
        let (now, epoch) = (self.now, self.incarnation[peer.0 as usize]);
        self.emit_event(now, peer.0, epoch, None, None, None, kind);
    }

    /// Central emission point: stamps one event, hands it to every
    /// attached online observer (in attachment order), then journals it
    /// (if collecting). Observers see events in the same order and with
    /// the same `seq` the journal assigns, so online and post-hoc
    /// analysis agree.
    #[allow(clippy::too_many_arguments)]
    fn emit_event(
        &mut self,
        at: u64,
        peer: u32,
        epoch: u64,
        txn: Option<String>,
        span: Option<String>,
        parent: Option<String>,
        kind: EventKind,
    ) {
        if self.trace.is_none() && self.observers.is_empty() {
            return;
        }
        let seq = self.emitted;
        self.emitted += 1;
        let event = TraceEvent { seq, at, peer, epoch, txn, span, parent, kind };
        for obs in &self.observers {
            obs.borrow_mut().on_event(&event);
        }
        if let Some(j) = &mut self.trace {
            let TraceEvent { at, peer, epoch, txn, span, parent, kind, .. } = event;
            j.record(at, peer, epoch, txn, span, parent, kind);
        }
    }
}

/// What an actor can do while handling an event.
pub struct Ctx<'a, M: Message> {
    state: &'a mut SimState<M>,
    me: PeerId,
}

impl<M: Message> Ctx<'_, M> {
    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.state.now
    }

    /// This actor's peer id.
    pub fn me(&self) -> PeerId {
        self.me
    }

    /// Sends a message. Fails synchronously if the target is disconnected
    /// at this instant; otherwise the message is delivered after a seeded
    /// latency — unless the fault plane drops, duplicates, or delays it
    /// first (and it is silently dropped if the target disconnects in
    /// flight).
    pub fn send(&mut self, to: PeerId, msg: M) -> Result<(), SendError> {
        if !self.state.connected.get(to.0 as usize).copied().unwrap_or(false) {
            self.state.metrics.send_failures += 1;
            return Err(SendError::Unreachable(to));
        }
        let delay = self.state.rng.gen_range(self.state.latency.min..=self.state.latency.max);
        // Saturating: protocol layers with saturating backoff can run at
        // the very end of the logical clock.
        let at = self.state.now.saturating_add(delay);
        self.state.metrics.sent += 1;
        let kind = msg.kind();
        *self.state.metrics.by_kind.entry(kind).or_default() += 1;
        if msg.is_retransmit() {
            self.state.metrics.retransmits += 1;
            *self.state.metrics.retransmits_by_kind.entry(kind).or_default() += 1;
        }
        let from = self.me;
        let link = from.0 as usize * self.state.peers + to.0 as usize;
        let link_seq = self.state.link_sent[link];
        self.state.link_sent[link] += 1;
        let now = self.state.now;
        match self.state.fault.on_send(now, from, to, kind) {
            None => {
                self.state.schedule(at, Event::Deliver { from, to, msg, link_seq, dup: false });
            }
            Some(Injected::PartitionDrop) => {
                self.state.metrics.injected_drops += 1;
                self.state.metrics.partition_drops += 1;
                *self.state.metrics.drops_by_kind.entry(kind).or_default() += 1;
            }
            Some(Injected::Drop) => {
                self.state.metrics.injected_drops += 1;
                *self.state.metrics.drops_by_kind.entry(kind).or_default() += 1;
            }
            Some(Injected::Duplicate { extra }) => {
                self.state.metrics.injected_dups += 1;
                *self.state.metrics.dups_by_kind.entry(kind).or_default() += 1;
                let copy = msg.clone();
                self.state.schedule(at, Event::Deliver { from, to, msg, link_seq, dup: false });
                self.state
                    .schedule(at.saturating_add(extra), Event::Deliver { from, to, msg: copy, link_seq, dup: true });
            }
            Some(Injected::Spike { extra }) => {
                self.state.metrics.injected_spikes += 1;
                self.state.schedule(at.saturating_add(extra), Event::Deliver { from, to, msg, link_seq, dup: false });
            }
            Some(Injected::Reorder { extra }) => {
                self.state.metrics.injected_reorders += 1;
                self.state.schedule(at.saturating_add(extra), Event::Deliver { from, to, msg, link_seq, dup: false });
            }
        }
        Ok(())
    }

    /// Sets a timer that fires on this peer after `delay` time units,
    /// delivering `tag` to [`Actor::on_timer`]. The timer dies if the
    /// peer crash-restarts before it fires. Extreme delays saturate at
    /// the end of logical time instead of wrapping (a timer that "never"
    /// fires stays a timer that never fires).
    pub fn set_timer(&mut self, delay: u64, tag: u64) -> TimerId {
        let id = TimerId(self.state.next_timer);
        self.state.next_timer += 1;
        let me = self.me;
        let at = self.state.now.saturating_add(delay);
        let inc = self.state.incarnation[me.0 as usize];
        self.state.schedule(at, Event::Timer { peer: me, id, tag, inc });
        id
    }

    /// This peer's crash-restart incarnation (0 until the first crash).
    /// Protocol layers use it to namespace identifiers that must not be
    /// reused across a restart.
    pub fn incarnation(&self) -> u64 {
        self.state.incarnation[self.me.0 as usize]
    }

    /// Cancels a pending timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.state.cancelled.insert(id.0);
    }

    /// Connectivity oracle — **for assertions and the churn driver only**.
    /// Protocol code must detect disconnection the way the paper does:
    /// failed sends, missed pings, missed stream intervals.
    pub fn is_connected(&self, peer: PeerId) -> bool {
        self.state.connected.get(peer.0 as usize).copied().unwrap_or(false)
    }

    /// True if `peer` is a super peer.
    pub fn is_super(&self, peer: PeerId) -> bool {
        self.state.super_peer.get(peer.0 as usize).copied().unwrap_or(false)
    }

    /// A seeded random draw in `[lo, hi]`.
    pub fn rand_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.state.rng.gen_range(lo..=hi)
    }

    /// True if a trace sink is collecting events or an online observer is
    /// attached. Protocol layers use this to skip building event payloads
    /// on unobserved runs.
    pub fn tracing(&self) -> bool {
        self.state.trace.is_some() || !self.state.observers.is_empty()
    }

    /// Emits one lifecycle event, stamped with the current logical time,
    /// this peer's id, and its crash-restart epoch. A no-op when the
    /// sink is disabled and no observer is attached.
    pub fn emit(&mut self, txn: Option<String>, span: Option<String>, parent: Option<String>, kind: EventKind) {
        let (now, epoch) = (self.state.now, self.state.incarnation[self.me.0 as usize]);
        let peer = self.me.0;
        self.state.emit_event(now, peer, epoch, txn, span, parent, kind);
    }
}

/// The simulator: actors plus the event queue.
pub struct Sim<M: Message, A: Actor<M>> {
    state: SimState<M>,
    actors: Vec<Option<A>>,
}

impl<M: Message, A: Actor<M>> Sim<M, A> {
    /// Builds a simulator over `actors`; peer `i` runs `actors[i]` and all
    /// peers start connected.
    pub fn new(config: SimConfig, actors: Vec<A>) -> Sim<M, A> {
        let n = actors.len();
        let crashes: Vec<CrashEvent> = config.fault.crashes.clone();
        let mut sim = Sim {
            state: SimState {
                now: 0,
                seq: 0,
                next_timer: 0,
                queue: BinaryHeap::new(),
                connected: vec![true; n],
                super_peer: vec![false; n],
                incarnation: vec![0; n],
                cancelled: HashSet::new(),
                rng: StdRng::seed_from_u64(config.seed),
                latency: config.latency,
                max_events: config.max_events,
                fault: FaultRuntime::new(config.fault),
                peers: n,
                link_sent: vec![0; n * n],
                link_delivered: vec![0; n * n],
                trace: config.trace.enabled().then(TraceJournal::default),
                observers: Vec::new(),
                emitted: 0,
                sample_interval: config.sample_interval,
                next_sample: config.sample_interval,
                metrics: NetMetrics::default(),
            },
            actors: actors.into_iter().map(Some).collect(),
        };
        for c in crashes {
            sim.state.schedule(c.at, Event::CrashRestart(c.peer));
        }
        sim
    }

    /// Attaches an online event observer (e.g. the `axml-obs` protocol
    /// monitor or flight recorder). Observers receive every lifecycle
    /// event as it is emitted, in attachment order, whether or not a
    /// journal is collecting. Observation-only: attaching one never
    /// changes the seeded event schedule.
    pub fn attach_observer(&mut self, sink: SharedSink) {
        self.state.observers.push(sink);
    }

    /// Marks a peer as a super peer (disconnect events are ignored for it).
    pub fn mark_super(&mut self, peer: PeerId) {
        if let Some(s) = self.state.super_peer.get_mut(peer.0 as usize) {
            *s = true;
        }
    }

    /// Schedules a disconnect at time `at` (ignored for super peers when
    /// it fires).
    pub fn schedule_disconnect(&mut self, at: u64, peer: PeerId) {
        self.state.schedule(at, Event::Disconnect(peer));
    }

    /// Schedules a reconnect at time `at`.
    pub fn schedule_reconnect(&mut self, at: u64, peer: PeerId) {
        self.state.schedule(at, Event::Reconnect(peer));
    }

    /// Schedules a crash-restart at time `at` (skipped if the peer is
    /// disconnected when it fires).
    pub fn schedule_crash_restart(&mut self, at: u64, peer: PeerId) {
        self.state.schedule(at, Event::CrashRestart(peer));
    }

    /// Schedules a timer on a peer from outside (how the harness starts a
    /// scenario: e.g. tag 0 = "submit the transaction now"). Like actor
    /// timers, it dies if the peer crash-restarts first.
    pub fn schedule_timer(&mut self, at: u64, peer: PeerId, tag: u64) {
        let id = TimerId(self.state.next_timer);
        self.state.next_timer += 1;
        let inc = self.state.incarnation[peer.0 as usize];
        self.state.schedule(at, Event::Timer { peer, id, tag, inc });
    }

    /// Runs until the queue drains or the event cap is hit. Returns the
    /// final logical time.
    pub fn run(&mut self) -> u64 {
        self.run_until(u64::MAX)
    }

    /// Runs until logical time `deadline` (events at `deadline` included),
    /// the queue drains, or the event cap is hit.
    pub fn run_until(&mut self, deadline: u64) -> u64 {
        let mut processed = 0u64;
        while let Some(head_at) = self.state.queue.peek().map(|h| h.at) {
            if head_at > deadline {
                break;
            }
            if processed >= self.state.max_events {
                break;
            }
            // Window sampling sits between events: every boundary strictly
            // before the next event is sampled once, so a gauge at boundary
            // `b` reflects the state after all events stamped `<= b`.
            self.sample_windows_before(head_at);
            processed += 1;
            let Scheduled { at, event, .. } = self.state.queue.pop().expect("peeked");
            self.state.now = at;
            match event {
                Event::Deliver { from, to, msg, link_seq, dup } => {
                    if !self.state.connected[to.0 as usize] {
                        self.state.metrics.dropped_in_flight += 1;
                        continue;
                    }
                    if !dup {
                        // Out-of-order accounting: a delivery behind a
                        // later-sent message on the same link. The
                        // watermark stores `highest delivered seq + 1`.
                        let link = from.0 as usize * self.state.peers + to.0 as usize;
                        let hi = &mut self.state.link_delivered[link];
                        if link_seq + 1 < *hi {
                            self.state.metrics.out_of_order += 1;
                        } else {
                            *hi = link_seq + 1;
                        }
                    }
                    self.state.metrics.delivered += 1;
                    self.with_actor(to, |actor, ctx| actor.on_message(ctx, from, msg));
                }
                Event::Timer { peer, id, tag, inc } => {
                    if self.state.cancelled.remove(&id.0) {
                        continue;
                    }
                    if inc != self.state.incarnation[peer.0 as usize] {
                        self.state.metrics.stale_timers += 1;
                        continue; // set before a crash-restart: dead
                    }
                    if !self.state.connected[peer.0 as usize] {
                        continue; // offline peers' timers don't fire
                    }
                    self.state.metrics.timers_fired += 1;
                    self.with_actor(peer, |actor, ctx| actor.on_timer(ctx, tag));
                }
                Event::Disconnect(peer) => {
                    if self.state.super_peer[peer.0 as usize] {
                        continue; // "trusted peers which do not disconnect"
                    }
                    if std::mem::replace(&mut self.state.connected[peer.0 as usize], false) {
                        self.state.metrics.disconnects += 1;
                        self.state.emit_sim(peer, EventKind::Disconnect);
                    }
                }
                Event::Reconnect(peer) => {
                    if !std::mem::replace(&mut self.state.connected[peer.0 as usize], true) {
                        self.state.metrics.reconnects += 1;
                        self.state.emit_sim(peer, EventKind::Reconnect);
                        self.with_actor(peer, |actor, ctx| actor.on_reconnect(ctx));
                    }
                }
                Event::CrashRestart(peer) => {
                    if !self.state.connected[peer.0 as usize] {
                        continue; // an offline peer has nothing running to crash
                    }
                    self.state.metrics.crash_restarts += 1;
                    self.state.emit_sim(peer, EventKind::Crash);
                    self.state.incarnation[peer.0 as usize] += 1;
                    self.with_actor(peer, |actor, ctx| actor.on_crash_restart(ctx));
                }
            }
        }
        self.state.now
    }

    /// Emits gauge samples for every window boundary strictly before
    /// `next_at`. A pure function of the schedule: boundaries are fixed
    /// multiples of the interval, actors are read in peer order, and
    /// each actor reports its gauges in its own fixed order — so the
    /// sampled series is byte-identical on every replay.
    fn sample_windows_before(&mut self, next_at: u64) {
        let interval = self.state.sample_interval;
        if interval == 0 || (self.state.trace.is_none() && self.state.observers.is_empty()) {
            return;
        }
        while self.state.next_sample < next_at {
            let at = self.state.next_sample;
            let mut gauges: Vec<(&'static str, u64)> = Vec::new();
            for (peer, actor) in self.actors.iter().enumerate() {
                let Some(actor) = actor.as_ref() else { continue };
                gauges.clear();
                actor.sample_gauges(&mut gauges);
                let epoch = self.state.incarnation[peer];
                for (name, value) in gauges.drain(..) {
                    self.state.emit_event(
                        at,
                        peer as u32,
                        epoch,
                        None,
                        None,
                        None,
                        EventKind::Gauge { name: name.to_string(), value },
                    );
                }
            }
            let bumped = self.state.next_sample.saturating_add(interval);
            if bumped == self.state.next_sample {
                break; // saturated at the end of logical time
            }
            self.state.next_sample = bumped;
        }
    }

    fn with_actor(&mut self, peer: PeerId, f: impl FnOnce(&mut A, &mut Ctx<'_, M>)) {
        let slot = peer.0 as usize;
        let Some(mut actor) = self.actors.get_mut(slot).and_then(Option::take) else {
            return;
        };
        {
            let mut ctx = Ctx { state: &mut self.state, me: peer };
            f(&mut actor, &mut ctx);
        }
        self.actors[slot] = Some(actor);
    }

    /// Immutable access to an actor (assertions after a run).
    pub fn actor(&self, peer: PeerId) -> &A {
        self.actors[peer.0 as usize].as_ref().expect("actor not in use")
    }

    /// Mutable access to an actor (setup between runs).
    pub fn actor_mut(&mut self, peer: PeerId) -> &mut A {
        self.actors[peer.0 as usize].as_mut().expect("actor not in use")
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.state.now
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &NetMetrics {
        &self.state.metrics
    }

    /// The collected event journal, if the run was traced.
    pub fn trace(&self) -> Option<&TraceJournal> {
        self.state.trace.as_ref()
    }

    /// The fault schedule this simulation was configured with.
    pub fn fault_plane(&self) -> &FaultPlane {
        self.state.fault.plane()
    }

    /// Every per-message fault injected so far, as a replayable script
    /// (partition drops excluded — the partitions themselves are already
    /// scripted in the plane). Feeding this to [`FaultPlane::scripted`]
    /// with the same partitions and crashes reproduces the run.
    pub fn fault_trace(&self) -> &[ScriptedFault] {
        self.state.fault.trace()
    }

    /// A peer's crash-restart incarnation (0 until its first crash).
    pub fn incarnation(&self, peer: PeerId) -> u64 {
        self.state.incarnation[peer.0 as usize]
    }

    /// Connectivity oracle for assertions.
    pub fn is_connected(&self, peer: PeerId) -> bool {
        self.state.connected[peer.0 as usize]
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// True if the simulator has no peers.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Message for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Ping(_) => "ping",
                Msg::Pong(_) => "pong",
            }
        }
    }

    /// Echoes pings; counts everything it sees.
    #[derive(Default)]
    struct Echo {
        pings: u32,
        pongs: u32,
        send_failures: u32,
        fired: Vec<u64>,
        reconnects: u32,
        deliveries_at: Vec<u64>,
    }

    impl Actor<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: PeerId, msg: Msg) {
            self.deliveries_at.push(ctx.now());
            match msg {
                Msg::Ping(n) => {
                    self.pings += 1;
                    if ctx.send(from, Msg::Pong(n)).is_err() {
                        self.send_failures += 1;
                    }
                }
                Msg::Pong(n) => self.pongs += n,
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
            self.fired.push(tag);
            // tag = target peer to ping
            if tag < 100 && ctx.send(PeerId(tag as u32), Msg::Ping(1)).is_err() {
                self.send_failures += 1;
            }
        }

        fn on_reconnect(&mut self, _ctx: &mut Ctx<'_, Msg>) {
            self.reconnects += 1;
        }
    }

    fn sim(n: usize) -> Sim<Msg, Echo> {
        Sim::new(SimConfig::default(), (0..n).map(|_| Echo::default()).collect())
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut s = sim(2);
        s.schedule_timer(0, PeerId(0), 1); // AP0 pings AP1
        s.run();
        assert_eq!(s.actor(PeerId(1)).pings, 1);
        assert_eq!(s.actor(PeerId(0)).pongs, 1);
        assert_eq!(s.metrics().sent, 2);
        assert_eq!(s.metrics().delivered, 2);
        assert_eq!(s.metrics().kind("ping"), 1);
        assert_eq!(s.metrics().kind("pong"), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = sim(3);
            for t in 0..10 {
                s.schedule_timer(t, PeerId(0), 1);
                s.schedule_timer(t, PeerId(1), 2);
            }
            s.run();
            (s.now(), s.metrics().sent, s.actor(PeerId(2)).deliveries_at.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_change_latency_schedule() {
        let run = |seed| {
            let mut s = Sim::new(SimConfig { seed, ..Default::default() }, vec![Echo::default(), Echo::default()]);
            s.schedule_timer(0, PeerId(0), 1);
            s.run();
            s.actor(PeerId(1)).deliveries_at.clone()
        };
        // With latency jitter 1..=5, some seed pair must differ.
        let schedules: Vec<_> = (0..10).map(run).collect();
        assert!(schedules.iter().any(|s| *s != schedules[0]), "latency should be seed-dependent");
    }

    #[test]
    fn synchronous_unreachable_detection() {
        let mut s = sim(2);
        s.schedule_disconnect(0, PeerId(1));
        s.schedule_timer(5, PeerId(0), 1); // ping after the disconnect
        s.run();
        assert_eq!(s.actor(PeerId(0)).send_failures, 1);
        assert_eq!(s.metrics().send_failures, 1);
        assert_eq!(s.metrics().sent, 0);
    }

    #[test]
    fn in_flight_messages_dropped_on_disconnect() {
        let mut s = sim(2);
        s.schedule_timer(0, PeerId(0), 1); // ping departs at t=0, arrives t∈[1,5]
        s.schedule_disconnect(0, PeerId(1)); // but AP1 disconnects at t=0 — wait, same time
        s.run();
        // Disconnect at t=0 happens... event order by seq: timer scheduled
        // first, so ping send succeeds (AP1 still connected at t=0? The
        // disconnect was scheduled second, so at equal time the timer runs
        // first). The delivery later finds AP1 disconnected → dropped.
        assert_eq!(s.metrics().sent, 1);
        assert_eq!(s.metrics().dropped_in_flight, 1);
        assert_eq!(s.actor(PeerId(1)).pings, 0);
    }

    #[test]
    fn super_peers_never_disconnect() {
        let mut s = sim(2);
        s.mark_super(PeerId(1));
        s.schedule_disconnect(0, PeerId(1));
        s.schedule_timer(5, PeerId(0), 1);
        s.run();
        assert!(s.is_connected(PeerId(1)));
        assert_eq!(s.actor(PeerId(1)).pings, 1);
        assert_eq!(s.metrics().disconnects, 0);
    }

    #[test]
    fn reconnect_fires_hook_and_restores_delivery() {
        let mut s = sim(2);
        s.schedule_disconnect(0, PeerId(1));
        s.schedule_reconnect(10, PeerId(1));
        s.schedule_timer(20, PeerId(0), 1);
        s.run();
        assert_eq!(s.actor(PeerId(1)).reconnects, 1);
        assert_eq!(s.actor(PeerId(1)).pings, 1);
        assert_eq!(s.metrics().disconnects, 1);
        assert_eq!(s.metrics().reconnects, 1);
    }

    #[test]
    fn offline_peer_timers_do_not_fire() {
        let mut s = sim(1);
        s.schedule_timer(5, PeerId(0), 42);
        s.schedule_disconnect(0, PeerId(0));
        s.run();
        assert!(s.actor(PeerId(0)).fired.is_empty());
    }

    #[test]
    fn timer_cancellation() {
        struct Canceller {
            fired: Vec<u64>,
            pending: Option<TimerId>,
        }
        impl Actor<Msg> for Canceller {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: PeerId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
                self.fired.push(tag);
                if tag == 1 {
                    // Set a timer then immediately cancel it; set another that survives.
                    let t = ctx.set_timer(10, 2);
                    ctx.cancel_timer(t);
                    ctx.set_timer(10, 3);
                }
            }
        }
        let mut s = Sim::new(SimConfig::default(), vec![Canceller { fired: vec![], pending: None }]);
        let _ = &s.actor(PeerId(0)).pending; // silence unused-field pattern
        s.schedule_timer(0, PeerId(0), 1);
        s.run();
        assert_eq!(s.actor(PeerId(0)).fired, vec![1, 3]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut s = sim(2);
        s.schedule_timer(100, PeerId(0), 1);
        let t = s.run_until(50);
        assert!(t <= 50);
        assert!(s.actor(PeerId(0)).fired.is_empty());
        s.run();
        assert_eq!(s.actor(PeerId(0)).fired, vec![1]);
    }

    #[test]
    fn scripted_drop_loses_exactly_one_message() {
        use crate::fault::{FaultAction, FaultPlane, ScriptedFault};
        let mut config = SimConfig::default();
        config.fault = FaultPlane::scripted(vec![ScriptedFault {
            from: PeerId(0),
            to: PeerId(1),
            kind: "ping".into(),
            nth: 1,
            action: FaultAction::Drop,
        }]);
        let mut s = Sim::new(config, vec![Echo::default(), Echo::default()]);
        for t in 0..3 {
            s.schedule_timer(t * 20, PeerId(0), 1);
        }
        s.run();
        assert_eq!(s.actor(PeerId(1)).pings, 2, "one of three pings dropped");
        assert_eq!(s.metrics().injected_drops, 1);
        assert_eq!(s.metrics().drops_of("ping"), 1);
        assert_eq!(s.metrics().sent, 5, "dropped message still counts as sent");
        assert_eq!(s.fault_trace().len(), 1);
    }

    #[test]
    fn scripted_duplicate_delivers_twice() {
        use crate::fault::{FaultAction, FaultPlane, ScriptedFault};
        let mut config = SimConfig::default();
        config.fault = FaultPlane::scripted(vec![ScriptedFault {
            from: PeerId(0),
            to: PeerId(1),
            kind: "ping".into(),
            nth: 0,
            action: FaultAction::Duplicate { extra: 7 },
        }]);
        let mut s = Sim::new(config, vec![Echo::default(), Echo::default()]);
        s.schedule_timer(0, PeerId(0), 1);
        s.run();
        assert_eq!(s.actor(PeerId(1)).pings, 2, "original + duplicate");
        assert_eq!(s.metrics().injected_dups, 1);
        assert_eq!(s.metrics().dups_of("ping"), 1);
        assert_eq!(s.metrics().out_of_order, 0, "duplicates are not reorders");
    }

    #[test]
    fn reorder_spike_counts_out_of_order_delivery() {
        use crate::fault::{FaultAction, FaultPlane, ScriptedFault};
        let mut config = SimConfig::default();
        config.latency = LatencyModel { min: 1, max: 1 };
        // Delay the first ping so the second overtakes it on the link.
        config.fault = FaultPlane::scripted(vec![ScriptedFault {
            from: PeerId(0),
            to: PeerId(1),
            kind: "ping".into(),
            nth: 0,
            action: FaultAction::Reorder { extra: 10 },
        }]);
        let mut s = Sim::new(config, vec![Echo::default(), Echo::default()]);
        s.schedule_timer(0, PeerId(0), 1);
        s.schedule_timer(2, PeerId(0), 1);
        s.run();
        assert_eq!(s.actor(PeerId(1)).pings, 2);
        assert_eq!(s.metrics().injected_reorders, 1);
        assert_eq!(s.metrics().out_of_order, 1);
    }

    #[test]
    fn partition_window_drops_silently_both_ways() {
        use crate::fault::{FaultPlane, Partition};
        let mut config = SimConfig::default();
        config.fault = FaultPlane {
            partitions: vec![Partition { start: 0, end: 50, a: vec![PeerId(0)], b: vec![PeerId(1)] }],
            ..FaultPlane::default()
        };
        let mut s = Sim::new(config, vec![Echo::default(), Echo::default()]);
        s.schedule_timer(10, PeerId(0), 1); // inside the window: dropped
        s.schedule_timer(60, PeerId(0), 1); // after healing: delivered
        s.run();
        assert_eq!(s.actor(PeerId(0)).send_failures, 0, "partitions are silent");
        assert_eq!(s.actor(PeerId(1)).pings, 1);
        assert_eq!(s.metrics().partition_drops, 1);
        assert_eq!(s.metrics().injected_drops, 1);
    }

    #[test]
    fn crash_restart_fires_hook_bumps_incarnation_and_kills_timers() {
        // A bespoke actor to observe the hook and timer death.
        struct Crashy {
            crashes: u32,
            fired: Vec<u64>,
        }
        impl Actor<Msg> for Crashy {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: PeerId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
                self.fired.push(tag);
                if tag == 1 {
                    ctx.set_timer(100, 2); // will be killed by the crash at t=50
                }
            }
            fn on_crash_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
                self.crashes += 1;
                assert_eq!(ctx.incarnation(), 1);
            }
        }
        let mut c = Sim::new(
            SimConfig::default(),
            vec![Crashy { crashes: 0, fired: vec![] }, Crashy { crashes: 0, fired: vec![] }],
        );
        c.schedule_timer(0, PeerId(0), 1);
        c.schedule_crash_restart(50, PeerId(0));
        c.run();
        assert_eq!(c.actor(PeerId(0)).crashes, 1);
        assert_eq!(c.actor(PeerId(0)).fired, vec![1], "post-crash timer never fired");
        assert_eq!(c.incarnation(PeerId(0)), 1);
        assert_eq!(c.metrics().crash_restarts, 1);
        assert_eq!(c.metrics().stale_timers, 1);
    }

    #[test]
    fn crash_of_offline_peer_is_skipped() {
        let mut s = sim(2);
        s.schedule_disconnect(0, PeerId(1));
        s.schedule_crash_restart(10, PeerId(1));
        s.run();
        assert_eq!(s.metrics().crash_restarts, 0);
        assert_eq!(s.incarnation(PeerId(1)), 0);
    }

    #[test]
    fn probabilistic_faults_are_deterministic_per_seed() {
        use crate::fault::FaultPlane;
        let run = || {
            let mut config = SimConfig::default();
            config.fault = FaultPlane::probabilistic(11, 0.3, 0.2, 0.1, 0.1);
            let mut s = Sim::new(config, vec![Echo::default(), Echo::default()]);
            for t in 0..40 {
                s.schedule_timer(t * 3, PeerId(0), 1);
            }
            s.run();
            (s.actor(PeerId(1)).pings, s.metrics().clone(), s.fault_trace().to_vec())
        };
        let (pings1, m1, t1) = run();
        let (pings2, m2, t2) = run();
        assert_eq!(pings1, pings2);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        assert!(m1.injected_total() > 0, "faults actually injected");
    }

    #[test]
    fn tracing_disabled_by_default_enabled_via_sink() {
        let mut s = sim(2);
        s.schedule_timer(0, PeerId(0), 1);
        s.run();
        assert!(s.trace().is_none(), "no journal unless the sink is on");

        let config = SimConfig { trace: TraceSink::Memory, ..Default::default() };
        let mut s = Sim::new(config, vec![Echo::default(), Echo::default()]);
        s.schedule_disconnect(5, PeerId(1));
        s.schedule_reconnect(10, PeerId(1));
        s.schedule_crash_restart(20, PeerId(1));
        s.run();
        let j = s.trace().expect("journal collected");
        assert_eq!(j.count("disconnect"), 1);
        assert_eq!(j.count("reconnect"), 1);
        assert_eq!(j.count("crash"), 1);
        let crash = j.events().iter().find(|e| e.kind == EventKind::Crash).unwrap();
        assert_eq!(crash.at, 20);
        assert_eq!(crash.peer, 1);
        assert_eq!(crash.epoch, 0, "crash stamped with the dying incarnation");
    }

    #[test]
    fn ctx_emit_stamps_time_peer_epoch() {
        struct Emitter;
        impl Actor<Msg> for Emitter {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: PeerId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
                assert!(ctx.tracing());
                ctx.emit(Some("T0.0".into()), None, None, EventKind::Resolve { committed: tag == 1 });
            }
        }
        let config = SimConfig { trace: TraceSink::Memory, ..Default::default() };
        let mut s = Sim::new(config, vec![Emitter]);
        s.schedule_timer(3, PeerId(0), 1);
        s.run();
        let j = s.trace().unwrap();
        assert_eq!(j.len(), 1);
        let e = &j.events()[0];
        assert_eq!((e.at, e.peer, e.epoch, e.seq), (3, 0, 0, 0));
        assert_eq!(e.txn.as_deref(), Some("T0.0"));
    }

    #[test]
    fn observer_sees_journal_events_without_a_journal() {
        use axml_trace::{EventSink, SharedSink, TraceEvent};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Collect(Vec<TraceEvent>);
        impl EventSink for Collect {
            fn on_event(&mut self, event: &TraceEvent) {
                self.0.push(event.clone());
            }
        }
        struct Emitter;
        impl Actor<Msg> for Emitter {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: PeerId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                assert!(ctx.tracing(), "observer alone turns tracing on");
                ctx.emit(Some("T0.0".into()), None, None, EventKind::Resolve { committed: true });
            }
        }
        let run = |journal: bool, observe: bool| {
            let trace = if journal { TraceSink::Memory } else { TraceSink::Disabled };
            let config = SimConfig { trace, ..Default::default() };
            let mut s = Sim::new(config, vec![Emitter]);
            let seen = Rc::new(RefCell::new(Collect::default()));
            if observe {
                let sink: SharedSink = seen.clone();
                s.attach_observer(sink);
            }
            s.schedule_timer(3, PeerId(0), 1);
            s.schedule_disconnect(7, PeerId(0));
            s.run();
            let journal: Vec<TraceEvent> = s.trace().map(|j| j.events().to_vec()).unwrap_or_default();
            let observed = std::mem::take(&mut seen.borrow_mut().0);
            (journal, observed)
        };
        let (journal, observed) = run(true, true);
        assert_eq!(journal, observed, "observer and journal see the identical stamped stream");
        let (_, alone) = run(false, true);
        assert_eq!(alone, observed, "observer-only runs emit the same events");
        assert_eq!(alone.len(), 2, "resolve + disconnect");
        assert_eq!(alone[1].seq, 1, "seq assigned without a journal too");
    }

    #[test]
    fn window_sampler_emits_gauges_at_fixed_boundaries_without_perturbing_the_run() {
        /// Pings a partner on every timer; reports its ping count as a gauge.
        #[derive(Default)]
        struct Gaugy {
            pings: u32,
            deliveries_at: Vec<u64>,
        }
        impl Actor<Msg> for Gaugy {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: PeerId, _msg: Msg) {
                self.pings += 1;
                self.deliveries_at.push(ctx.now());
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                let _ = ctx.send(PeerId(1), Msg::Ping(1));
            }
            fn sample_gauges(&self, out: &mut Vec<(&'static str, u64)>) {
                out.push(("pings_seen", u64::from(self.pings)));
            }
        }
        let run = |sample_interval: u64, trace: TraceSink| {
            let config = SimConfig { trace, sample_interval, ..Default::default() };
            let mut s = Sim::new(config, vec![Gaugy::default(), Gaugy::default()]);
            for t in 0..8 {
                s.schedule_timer(t * 5, PeerId(0), 1);
            }
            s.run();
            let journal = s.trace().map(|j| j.events().to_vec()).unwrap_or_default();
            (s.actor(PeerId(1)).deliveries_at.clone(), journal)
        };
        let (plain, none) = run(0, TraceSink::Disabled);
        assert!(none.is_empty());
        let (sampled, journal) = run(10, TraceSink::Memory);
        assert_eq!(plain, sampled, "sampling never perturbs the schedule");
        let gauges: Vec<&TraceEvent> = journal.iter().filter(|e| e.kind.label() == "gauge").collect();
        assert!(!gauges.is_empty(), "boundaries inside the run are sampled");
        for g in &gauges {
            assert_eq!(g.at % 10, 0, "gauges land on window boundaries");
            assert!(g.txn.is_none() && g.span.is_none(), "gauges are substrate events");
        }
        // Both peers report, in peer order within each boundary.
        assert!(gauges.iter().any(|g| g.peer == 0) && gauges.iter().any(|g| g.peer == 1));
        let boundary10: Vec<u32> = gauges.iter().filter(|g| g.at == 10).map(|g| g.peer).collect();
        assert_eq!(boundary10, vec![0, 1], "peer order within a boundary");
        // The reading at boundary `b` reflects events stamped <= b: both
        // journal and gauge agree on the ping count at t=10.
        let at10 = gauges.iter().find(|g| g.at == 10 && g.peer == 1).expect("peer 1 sampled at t=10");
        let pings_by_10 = sampled.iter().filter(|&&t| t <= 10).count() as u64;
        assert_eq!(at10.kind, EventKind::Gauge { name: "pings_seen".into(), value: pings_by_10 });
        // Off means off: no gauge events without a sample interval.
        let (_, untimed) = run(0, TraceSink::Memory);
        assert!(untimed.iter().all(|e| e.kind.label() != "gauge"));
    }

    #[test]
    fn multiple_observers_each_see_the_full_stream() {
        use axml_trace::{EventSink, SharedSink, TraceEvent};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Collect(Vec<u64>);
        impl EventSink for Collect {
            fn on_event(&mut self, event: &TraceEvent) {
                self.0.push(event.seq);
            }
        }
        let mut s = sim(2);
        let a = Rc::new(RefCell::new(Collect::default()));
        let b = Rc::new(RefCell::new(Collect::default()));
        s.attach_observer(a.clone() as SharedSink);
        s.attach_observer(b.clone() as SharedSink);
        s.schedule_disconnect(5, PeerId(1));
        s.schedule_reconnect(9, PeerId(1));
        s.run();
        assert_eq!(a.borrow().0, vec![0, 1], "first observer sees both substrate events");
        assert_eq!(a.borrow().0, b.borrow().0, "all observers see the identical stream");
    }

    #[test]
    fn extreme_timer_delay_saturates_instead_of_wrapping() {
        // Setting a timer near u64::MAX from a nonzero `now` must not wrap
        // to the past; it should simply never fire within any deadline.
        struct Far;
        impl Actor<Msg> for Far {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: PeerId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
                if tag == 1 {
                    ctx.set_timer(u64::MAX - 1, 2);
                }
                assert_ne!(tag, 2, "saturated timer must not fire early");
            }
        }
        let mut s = Sim::new(SimConfig::default(), vec![Far]);
        s.schedule_timer(10, PeerId(0), 1);
        s.run_until(1_000_000);
    }

    #[test]
    fn non_duplicated_deliveries_never_clone_the_message() {
        // The fast path must move the message from the send into the
        // queue and from the queue into the actor: cloning is reserved
        // for the fault plane's Duplicate action. Pin it with a message
        // that counts its own clones.
        use std::cell::Cell;
        thread_local! {
            static CLONES: Cell<u64> = const { Cell::new(0) };
        }
        #[derive(Debug)]
        struct Counted(u64);
        impl Clone for Counted {
            fn clone(&self) -> Counted {
                CLONES.with(|c| c.set(c.get() + 1));
                Counted(self.0)
            }
        }
        impl Message for Counted {
            fn kind(&self) -> &'static str {
                "counted"
            }
        }
        struct Sink;
        impl Actor<Counted> for Sink {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Counted>, _from: PeerId, _msg: Counted) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Counted>, tag: u64) {
                let _ = ctx.send(PeerId(1), Counted(tag));
            }
        }

        CLONES.with(|c| c.set(0));
        let mut s = Sim::new(SimConfig::default(), vec![Sink, Sink]);
        for t in 0..50 {
            s.schedule_timer(t * 2, PeerId(0), t);
        }
        s.run();
        assert_eq!(s.metrics().delivered, 50);
        assert_eq!(CLONES.with(|c| c.get()), 0, "clean deliveries are clone-free");

        // With a scripted duplicate, exactly the duplicated message is
        // cloned — once.
        use crate::fault::{FaultAction, FaultPlane, ScriptedFault};
        CLONES.with(|c| c.set(0));
        let mut config = SimConfig::default();
        config.fault = FaultPlane::scripted(vec![ScriptedFault {
            from: PeerId(0),
            to: PeerId(1),
            kind: "counted".into(),
            nth: 3,
            action: FaultAction::Duplicate { extra: 5 },
        }]);
        let mut s = Sim::new(config, vec![Sink, Sink]);
        for t in 0..50 {
            s.schedule_timer(t * 2, PeerId(0), t);
        }
        s.run();
        assert_eq!(s.metrics().injected_dups, 1);
        assert_eq!(CLONES.with(|c| c.get()), 1, "one clone per injected duplicate");
    }

    #[test]
    fn out_of_order_watermark_matches_reordered_links() {
        // Dense watermark semantics: only deliveries strictly behind an
        // already-delivered later send count as out-of-order; duplicates
        // never do (covered above); a fresh link starts clean.
        use crate::fault::{FaultAction, FaultPlane, ScriptedFault};
        let mut config = SimConfig::default();
        config.latency = LatencyModel { min: 1, max: 1 };
        config.fault = FaultPlane::scripted(vec![
            ScriptedFault {
                from: PeerId(0),
                to: PeerId(1),
                kind: "ping".into(),
                nth: 0,
                action: FaultAction::Reorder { extra: 10 },
            },
            ScriptedFault {
                from: PeerId(0),
                to: PeerId(1),
                kind: "ping".into(),
                nth: 2,
                action: FaultAction::Reorder { extra: 10 },
            },
        ]);
        let mut s = Sim::new(config, vec![Echo::default(), Echo::default()]);
        for t in 0..4 {
            s.schedule_timer(t * 2, PeerId(0), 1);
        }
        s.run();
        assert_eq!(s.actor(PeerId(1)).pings, 4, "reordered pings still arrive");
        assert_eq!(s.metrics().out_of_order, 2, "both delayed pings arrive behind later sends");
    }

    #[test]
    fn same_time_events_fifo_by_schedule_order() {
        let mut s = sim(2);
        s.schedule_timer(5, PeerId(0), 10);
        s.schedule_timer(5, PeerId(0), 11);
        s.schedule_timer(5, PeerId(0), 12);
        s.run();
        // Tags 10..12 don't trigger sends (>= 100? no, < 100 sends to
        // PeerId(tag)); they do attempt sends to out-of-range peers, which
        // fail — but firing order must be FIFO.
        assert_eq!(s.actor(PeerId(0)).fired, vec![10, 11, 12]);
    }
}
