//! Property-based tests for the discrete-event simulator.
//!
//! - Determinism: identical configurations replay identically.
//! - Conservation: every sent message is delivered or dropped, never both
//!   or neither.
//! - Clock monotonicity: actors observe non-decreasing time.
//! - Churn bookkeeping: connectivity reflects the last applied event.

use axml_p2p::{Actor, ChurnSchedule, Ctx, Message, PeerId, Sim, SimConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Token(u32);

impl Message for Token {
    fn kind(&self) -> &'static str {
        "token"
    }
}

/// Forwards tokens to the peer encoded in the token, recording times.
#[derive(Default)]
struct Forwarder {
    times: Vec<u64>,
    received: u32,
}

impl Actor<Token> for Forwarder {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, _from: PeerId, msg: Token) {
        self.times.push(ctx.now());
        self.received += 1;
        // Forward a few hops: decrement and pass along.
        if msg.0 > 0 {
            let n = ctx.me().0 as usize;
            let _ = ctx.send(PeerId(((n as u32) + 1) % 4), Token(msg.0 - 1));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Token>, tag: u64) {
        self.times.push(ctx.now());
        let _ = ctx.send(PeerId((tag % 4) as u32), Token((tag % 7) as u32));
    }
}

fn build(seed: u64, kicks: &[(u64, u32, u64)]) -> Sim<Token, Forwarder> {
    let actors = (0..4).map(|_| Forwarder::default()).collect();
    let mut sim = Sim::new(SimConfig { seed, ..Default::default() }, actors);
    for &(at, peer, tag) in kicks {
        sim.schedule_timer(at, PeerId(peer % 4), tag);
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn identical_runs_replay_identically(
        seed in 0u64..500,
        kicks in prop::collection::vec((0u64..50, 0u32..4, 0u64..20), 1..12),
    ) {
        let mut a = build(seed, &kicks);
        let mut b = build(seed, &kicks);
        a.run();
        b.run();
        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(a.metrics().sent, b.metrics().sent);
        prop_assert_eq!(a.metrics().delivered, b.metrics().delivered);
        for p in 0..4u32 {
            prop_assert_eq!(&a.actor(PeerId(p)).times, &b.actor(PeerId(p)).times);
        }
    }

    #[test]
    fn message_conservation(
        seed in 0u64..500,
        kicks in prop::collection::vec((0u64..50, 0u32..4, 0u64..20), 1..12),
        churn_seed in 0u64..100,
        p_disc in 0.0f64..0.8,
    ) {
        let mut sim = build(seed, &kicks);
        let peers: Vec<PeerId> = (0..4).map(PeerId).collect();
        let schedule = ChurnSchedule::random(churn_seed, &peers, &[], 100, 20, p_disc);
        schedule.install(&mut sim);
        sim.run();
        let m = sim.metrics();
        prop_assert_eq!(
            m.sent,
            m.delivered + m.dropped_in_flight,
            "sent = delivered + dropped: {:?}",
            m
        );
        // Per-kind counts sum to sent.
        let by_kind: u64 = m.by_kind.values().sum();
        prop_assert_eq!(by_kind, m.sent);
    }

    #[test]
    fn observed_clock_is_monotone(
        seed in 0u64..500,
        kicks in prop::collection::vec((0u64..50, 0u32..4, 0u64..20), 1..12),
    ) {
        let mut sim = build(seed, &kicks);
        sim.run();
        for p in 0..4u32 {
            let times = &sim.actor(PeerId(p)).times;
            for w in times.windows(2) {
                prop_assert!(w[0] <= w[1], "clock went backwards: {times:?}");
            }
        }
    }

    #[test]
    fn connectivity_reflects_last_event(
        flips in prop::collection::vec((1u64..100, 0u32..4, any::<bool>()), 1..10),
    ) {
        let mut sim = build(0, &[]);
        for &(at, peer, disconnect) in &flips {
            if disconnect {
                sim.schedule_disconnect(at, PeerId(peer % 4));
            } else {
                sim.schedule_reconnect(at, PeerId(peer % 4));
            }
        }
        sim.run();
        // Compute expected final state: last event per peer wins;
        // same-time events apply in scheduling order (seq).
        for p in 0..4u32 {
            let mut state = true;
            let mut best: Option<(u64, usize)> = None;
            for (i, &(at, peer, disconnect)) in flips.iter().enumerate() {
                if peer % 4 == p && best.map(|(t, s)| (at, i) >= (t, s)).unwrap_or(true) {
                    best = Some((at, i));
                    state = !disconnect;
                }
            }
            prop_assert_eq!(sim.is_connected(PeerId(p)), state, "peer {}", p);
        }
    }

    #[test]
    fn run_until_never_overshoots(
        seed in 0u64..200,
        kicks in prop::collection::vec((0u64..80, 0u32..4, 0u64..20), 1..8),
        deadline in 0u64..100,
    ) {
        let mut sim = build(seed, &kicks);
        let t = sim.run_until(deadline);
        prop_assert!(t <= deadline, "stopped at {t} > {deadline}");
        for p in 0..4u32 {
            for &obs in &sim.actor(PeerId(p)).times {
                prop_assert!(obs <= deadline);
            }
        }
    }
}
