//! Property-based tests for the ActiveXML layer.
//!
//! Headline invariant (§3.1, DESIGN.md §6): for any generated AXML
//! document and any query, *materialize-then-compensate is the identity* —
//! the compensation constructed from the materialization effects restores
//! the exact original document, in both lazy and eager modes.

use axml_doc::{
    EvalMode, Fault, MaterializationEngine, ResolvedCall, ServiceCall, ServiceInvoker, ServiceResponse, TransparentView,
};
use axml_query::{Effect, InsertPos, Locator, SelectQuery, UpdateAction};
use axml_xml::{Document, Fragment, QName};
use proptest::prelude::*;

const NAMES: &[&str] = &["a", "b", "c", "r0", "r1", "r2"];

/// Random AXML document: plain elements mixed with embedded calls whose
/// methods `svcK` deterministically return `<rK>fresh</rK>`.
fn axml_doc_strategy() -> impl Strategy<Value = Document> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(|i| Fragment::elem(NAMES[i])),
        (0usize..3, 0usize..3).prop_map(|(k, mode)| {
            let call = ServiceCall::build(
                "peer://ap9",
                format!("svc{k}"),
                if mode == 0 { axml_doc::ScMode::Merge } else { axml_doc::ScMode::Replace },
            );
            let mut frag = call.to_fragment();
            if mode == 2 {
                // Seed a previous result (exercises replace-mode deletion).
                frag = frag.with_child(Fragment::elem_text(format!("r{k}"), "previous"));
            }
            frag
        }),
    ];
    let frag = leaf.prop_recursive(3, 24, 4, |inner| {
        (0usize..3, prop::collection::vec(inner, 0..4)).prop_map(|(i, children)| Fragment::Element {
            name: QName::local(NAMES[i]),
            attrs: vec![],
            children,
        })
    });
    prop::collection::vec(frag, 1..5).prop_map(|frags| {
        let mut doc = Document::new("root");
        let root = doc.root();
        for f in &frags {
            doc.append_fragment(root, f).unwrap();
        }
        doc
    })
}

struct Fabric;

impl ServiceInvoker for Fabric {
    fn invoke(&mut self, call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
        let k = call.method.trim_start_matches("svc");
        Ok(ServiceResponse { items: vec![Fragment::elem_text(format!("r{k}"), "fresh")], effects: vec![] })
    }

    fn result_hints(&self, call: &ResolvedCall) -> Option<Vec<String>> {
        let k = call.method.trim_start_matches("svc");
        Some(vec![format!("r{k}")])
    }
}

fn compensate(doc: &mut Document, effects: &[Effect]) {
    for effect in effects.iter().rev() {
        match effect {
            Effect::Deleted { fragment, parent_path, position } => {
                UpdateAction::insert_at(
                    Locator::Node(parent_path.clone()),
                    vec![fragment.clone()],
                    InsertPos::At(*position),
                )
                .apply(doc)
                .unwrap();
            }
            Effect::Inserted { path, .. } => {
                UpdateAction::delete(Locator::Node(path.clone())).apply(doc).unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn materialize_then_compensate_is_identity(
        doc in axml_doc_strategy(),
        lazy in any::<bool>(),
        which in 0usize..3,
    ) {
        let mut doc = doc;
        let before = doc.to_xml();
        let mode = if lazy { EvalMode::Lazy } else { EvalMode::Eager };
        let engine = MaterializationEngine::new(mode);
        let q = SelectQuery::parse(&format!("Select v//r{which} from v in root")).unwrap();
        let (_hits, report) = engine.query(&mut doc, &q, &mut Fabric).unwrap();
        compensate(&mut doc, &report.effects);
        prop_assert_eq!(doc.to_xml(), before, "mode={:?}", mode);
        doc.check_consistency().unwrap();
    }

    #[test]
    fn lazy_materializes_subset_of_eager(doc in axml_doc_strategy(), which in 0usize..3) {
        let q = SelectQuery::parse(&format!("Select v//r{which} from v in root")).unwrap();
        let mut d1 = doc.clone();
        let (_h, lazy) = MaterializationEngine::new(EvalMode::Lazy).query(&mut d1, &q, &mut Fabric).unwrap();
        let mut d2 = doc;
        let (_h, eager) = MaterializationEngine::new(EvalMode::Eager).query(&mut d2, &q, &mut Fabric).unwrap();
        prop_assert!(lazy.materialized <= eager.materialized);
    }

    #[test]
    fn lazy_and_eager_agree_on_query_results(doc in axml_doc_strategy(), which in 0usize..3) {
        // Whatever lazy skips is irrelevant to the query: both modes must
        // return the same selected content.
        let q = SelectQuery::parse(&format!("Select v//r{which} from v in root")).unwrap();
        let mut d1 = doc.clone();
        let (h1, _) = MaterializationEngine::new(EvalMode::Lazy).query(&mut d1, &q, &mut Fabric).unwrap();
        let mut d2 = doc;
        let (h2, _) = MaterializationEngine::new(EvalMode::Eager).query(&mut d2, &q, &mut Fabric).unwrap();
        let c1: Vec<String> = h1.iter().map(|n| d1.subtree_to_xml(*n)).collect();
        let c2: Vec<String> = h2.iter().map(|n| d2.subtree_to_xml(*n)).collect();
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn transparent_view_never_contains_control_elements(doc in axml_doc_strategy()) {
        let tv = TransparentView::build(&doc);
        let xml = tv.view.to_xml();
        prop_assert!(!xml.contains("axml:sc"));
        prop_assert!(!xml.contains("axml:params"));
        tv.view.check_consistency().unwrap();
    }

    #[test]
    fn scan_is_stable_under_materialization(doc in axml_doc_strategy()) {
        // Materializing every call must not invent or lose calls
        // (results here are plain nodes, not new service calls).
        let mut doc = doc;
        let n_before = ServiceCall::scan(&doc).len();
        let engine = MaterializationEngine::new(EvalMode::Eager);
        let _ = engine.materialize_all(&mut doc, &mut Fabric).unwrap();
        prop_assert_eq!(ServiceCall::scan(&doc).len(), n_before);
    }
}

/// Walks `steps` through the child lists from the root, stopping early at
/// leaves; always yields an attached node.
fn pick_node(doc: &Document, steps: &[usize]) -> axml_xml::NodeId {
    let mut cur = doc.root();
    for &s in steps {
        let kids = doc.children(cur).expect("attached");
        if kids.is_empty() {
            break;
        }
        cur = kids[s % kids.len()];
    }
    cur
}

proptest! {
    /// §3.1 with *explicit* updates rather than materialization: any
    /// random sequence of structural insert/delete/replace actions is
    /// undone exactly by the compensation built from its logged effects —
    /// checked against the real `axml_core::compensate`, not a local
    /// reimplementation.
    #[test]
    fn random_update_sequences_compensate_to_identity(
        doc in axml_doc_strategy(),
        ops in proptest::collection::vec(
            (0u8..3u8, proptest::collection::vec(0usize..16, 0..4), 0usize..8),
            0..12,
        ),
    ) {
        use axml_core::compensate::{apply_compensation, compensation_for_effects};
        use axml_query::NodePath;

        let mut doc = doc;
        let before = doc.to_xml();
        let mut log: Vec<Effect> = Vec::new();
        for (kind, steps, aux) in &ops {
            let target = pick_node(&doc, steps);
            let is_element = doc.name(target).is_ok();
            let action = match kind {
                0 => {
                    if !is_element {
                        continue; // cannot insert under text/comments
                    }
                    let slots = doc.children(target).unwrap().len() + 1;
                    UpdateAction::insert_at(
                        Locator::Node(NodePath::of(&doc, target).unwrap()),
                        vec![Fragment::elem_text("ins", format!("v{aux}"))],
                        InsertPos::At(aux % slots),
                    )
                }
                1 => {
                    if target == doc.root() {
                        continue; // the root is immutable
                    }
                    UpdateAction::delete(Locator::Node(NodePath::of(&doc, target).unwrap()))
                }
                _ => {
                    if target == doc.root() {
                        continue;
                    }
                    UpdateAction::replace(
                        Locator::Node(NodePath::of(&doc, target).unwrap()),
                        vec![Fragment::elem_text("rep", format!("v{aux}"))],
                    )
                }
            };
            let report = action.apply(&mut doc).expect("structural action applies");
            log.extend(report.effects);
        }
        let comp = compensation_for_effects(&log);
        apply_compensation(&mut doc, &comp).expect("compensation applies");
        prop_assert_eq!(doc.to_xml(), before);
    }
}
