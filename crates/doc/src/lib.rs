#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ActiveXML (AXML) document layer.
//!
//! AXML documents are XML documents with embedded Web service calls
//! (`<axml:sc>` elements). This crate implements everything §1 and §3.1 of
//! the paper assume of the AXML platform:
//!
//! - [`ServiceCall`]: the embedded-call element, with `mode`
//!   (`replace`/`merge`), `frequency` (periodic calls), parameters that may
//!   themselves be service calls (**local nesting**), and BPEL4WS-style
//!   fault handlers (`axml:catch`, `axml:catchAll`, `axml:retry` — §3.2);
//! - [`ServiceDef`]: AXML services — "Web services defined as
//!   queries/updates over AXML documents" — plus simulated generic Web
//!   services, with a WSDL-like descriptor including declared result
//!   element names (used by lazy relevance analysis);
//! - [`Repository`]: the named documents an AXML peer hosts;
//! - [`TransparentView`]: query evaluation that sees *through* `axml:sc`
//!   wrappers (previous invocation results are logically siblings of the
//!   ordinary content);
//! - [`MaterializationEngine`]: lazy and eager materialization. Lazy
//!   evaluation "implies that only those embedded service calls are
//!   materialized whose results are required for evaluating the query" —
//!   the reason §3.1 concludes compensation for queries must be
//!   constructed dynamically. Every materialization reports the primitive
//!   [`axml_query::Effect`]s it performed, which is exactly what the
//!   transaction log consumes.

pub mod consts;
pub mod fault;
pub mod materialize;
pub mod repo;
pub mod sc;
pub mod service;
pub mod shared;
pub mod view;

pub use fault::Fault;
pub use materialize::{
    apply_call_results, EvalMode, InvocationRecord, LocalInvoker, MaterializationEngine, MaterializationReport,
    ResolvedCall, ServiceInvoker, ServiceResponse,
};
pub use repo::Repository;
pub use sc::{FaultHandler, HandlerAction, Param, ParamValue, ScMode, ServiceCall};
pub use service::{ServiceDef, ServiceKind, ServiceRegistry};
pub use shared::SharedRepository;
pub use view::apply_update_transparent;
pub use view::TransparentView;
