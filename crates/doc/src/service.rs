//! AXML service definitions and the per-peer service registry.
//!
//! "AXML Services: Web services defined as queries/updates over AXML
//! documents. Note that AXML services are also exposed as a regular Web
//! service (with a WSDL description file)." We model both flavors plus
//! simulated *generic* Web services (arbitrary deterministic functions),
//! which stand in for the long-running external services the paper's
//! transactions may embed.

use crate::fault::Fault;
use crate::materialize::ServiceResponse;
use crate::repo::Repository;
use crate::view::TransparentView;
use axml_query::{SelectQuery, UpdateAction};
use axml_xml::Fragment;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Signature of a simulated generic Web service.
pub type ServiceFn = Arc<dyn Fn(&[(String, String)]) -> Result<Vec<Fragment>, Fault> + Send + Sync>;

/// What a service does when invoked.
#[derive(Clone)]
pub enum ServiceKind {
    /// A declared query over a hosted document (evaluated transparently).
    Query {
        /// Name of the hosted document.
        doc: String,
        /// The query; `$param` placeholders in literals are substituted
        /// from the invocation parameters.
        query: SelectQuery,
    },
    /// A declared update over a hosted document.
    Update {
        /// Name of the hosted document.
        doc: String,
        /// The action; `$param` placeholders are substituted.
        action: UpdateAction,
    },
    /// A simulated generic Web service.
    Function(ServiceFn),
}

impl fmt::Debug for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceKind::Query { doc, query } => write!(f, "Query {{ doc: {doc:?}, query: {} }}", query.to_text()),
            ServiceKind::Update { doc, action } => {
                write!(f, "Update {{ doc: {doc:?}, action: {} }}", action.to_action_xml())
            }
            ServiceKind::Function(_) => write!(f, "Function(..)"),
        }
    }
}

/// A service a peer exposes.
#[derive(Debug, Clone)]
pub struct ServiceDef {
    /// Method name (what `axml:sc methodName` refers to).
    pub name: String,
    /// Behavior.
    pub kind: ServiceKind,
    /// Declared result element names — published in the WSDL descriptor
    /// and used by **lazy** relevance analysis on the client side.
    pub result_names: Vec<String>,
    /// Simulated processing duration (time units). Generic Web services
    /// "can be very long (in hours)" — the simulator honors this.
    pub duration: u64,
    /// Fault-injection hook: when set, invocations raise this fault
    /// instead of executing. Drives the recovery experiments.
    pub injected_fault: Option<Fault>,
}

impl ServiceDef {
    /// A query service.
    pub fn query(name: impl Into<String>, doc: impl Into<String>, query: SelectQuery) -> ServiceDef {
        ServiceDef {
            name: name.into(),
            kind: ServiceKind::Query { doc: doc.into(), query },
            result_names: Vec::new(),
            duration: 1,
            injected_fault: None,
        }
    }

    /// An update service.
    pub fn update(name: impl Into<String>, doc: impl Into<String>, action: UpdateAction) -> ServiceDef {
        ServiceDef {
            name: name.into(),
            kind: ServiceKind::Update { doc: doc.into(), action },
            result_names: Vec::new(),
            duration: 1,
            injected_fault: None,
        }
    }

    /// A simulated generic Web service.
    pub fn function<F>(name: impl Into<String>, f: F) -> ServiceDef
    where
        F: Fn(&[(String, String)]) -> Result<Vec<Fragment>, Fault> + Send + Sync + 'static,
    {
        ServiceDef {
            name: name.into(),
            kind: ServiceKind::Function(Arc::new(f)),
            result_names: Vec::new(),
            duration: 1,
            injected_fault: None,
        }
    }

    /// Builder: declares result element names.
    pub fn with_results(mut self, names: &[&str]) -> ServiceDef {
        self.result_names = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builder: sets the simulated duration.
    pub fn with_duration(mut self, duration: u64) -> ServiceDef {
        self.duration = duration;
        self
    }

    /// Executes the service against a repository.
    pub fn execute(&self, params: &[(String, String)], repo: &mut Repository) -> Result<ServiceResponse, Fault> {
        if let Some(f) = &self.injected_fault {
            return Err(f.clone());
        }
        match &self.kind {
            ServiceKind::Query { doc, query } => {
                let query = substitute_query(query, params)?;
                let document = repo.get(doc).ok_or_else(|| {
                    Fault::execution(format!("service {} references missing document {doc}", self.name))
                })?;
                let hits = TransparentView::eval(document, &query)
                    .map_err(|e| Fault::execution(format!("query failed: {e}")))?;
                let items = hits.iter().filter_map(|n| document.extract_fragment(*n).ok()).collect();
                Ok(ServiceResponse { items, effects: Vec::new() })
            }
            ServiceKind::Update { doc, action } => {
                let action = substitute_action(action, params)?;
                let document = repo.get_mut(doc).ok_or_else(|| {
                    Fault::execution(format!("service {} references missing document {doc}", self.name))
                })?;
                let report = crate::view::apply_update_transparent(document, &action)
                    .map_err(|e| Fault::execution(format!("update failed: {e}")))?;
                // Result items: for inserts, the inserted content (whose
                // unique IDs the effects carry); for deletes, nothing.
                let items = report
                    .effects
                    .iter()
                    .filter_map(|e| match e {
                        axml_query::Effect::Inserted { fragment, .. } => Some(fragment.clone()),
                        axml_query::Effect::Deleted { .. } => None,
                    })
                    .collect();
                Ok(ServiceResponse { items, effects: report.effects })
            }
            ServiceKind::Function(f) => {
                let items = f(params)?;
                Ok(ServiceResponse { items, effects: Vec::new() })
            }
        }
    }

    /// Renders a WSDL-like descriptor ("AXML services are also exposed as
    /// a regular Web service (with a WSDL description file)").
    pub fn wsdl(&self) -> String {
        let mut def = Fragment::elem("wsdl:definitions").with_attr("name", self.name.clone());
        let mut op = Fragment::elem("wsdl:operation").with_attr("name", self.name.clone());
        let mut output = Fragment::elem("wsdl:output");
        for r in &self.result_names {
            output = output.with_child(Fragment::elem("xsd:element").with_attr("name", r.clone()));
        }
        op = op.with_child(output);
        def = def.with_child(op);
        def.to_xml()
    }
}

/// Substitutes `$param` placeholders in plain (query) text.
fn substitute_text(text: &str, params: &[(String, String)]) -> String {
    let mut out = text.to_string();
    for (k, v) in params {
        out = out.replace(&format!("${k}"), v);
    }
    out
}

/// Substitutes `$param` placeholders into XML text, escaping the values —
/// a parameter carrying `<`, `&`, or quotes must become character data,
/// never markup (injection safety).
fn substitute_text_xml(text: &str, params: &[(String, String)]) -> String {
    let mut out = text.to_string();
    for (k, v) in params {
        out = out.replace(&format!("${k}"), &axml_xml::escape_attr(v));
    }
    out
}

fn substitute_query(query: &SelectQuery, params: &[(String, String)]) -> Result<SelectQuery, Fault> {
    if params.is_empty() {
        return Ok(query.clone());
    }
    let text = substitute_text(&query.to_text(), params);
    SelectQuery::parse(&text).map_err(|e| Fault::execution(format!("parameter substitution broke the query: {e}")))
}

fn substitute_action(action: &UpdateAction, params: &[(String, String)]) -> Result<UpdateAction, Fault> {
    if params.is_empty() {
        return Ok(action.clone());
    }
    let xml = substitute_text_xml(&action.to_action_xml(), params);
    UpdateAction::parse_action_xml(&xml)
        .map_err(|e| Fault::execution(format!("parameter substitution broke the action: {e}")))
}

/// The services one peer exposes, by method name.
#[derive(Debug, Default, Clone)]
pub struct ServiceRegistry {
    services: BTreeMap<String, ServiceDef>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Registers a service (replacing any previous definition).
    pub fn register(&mut self, def: ServiceDef) {
        self.services.insert(def.name.clone(), def);
    }

    /// Looks up a service.
    pub fn get(&self, name: &str) -> Option<&ServiceDef> {
        self.services.get(name)
    }

    /// Mutable lookup (fault injection, duration tweaks).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut ServiceDef> {
        self.services.get_mut(name)
    }

    /// Registered method names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.services.keys().map(String::as_str).collect()
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::Locator;

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.put_xml(
            "atp",
            r#"<ATPList>
                <player rank="1"><name><lastname>Federer</lastname></name><citizenship>Swiss</citizenship><points>475</points></player>
                <player rank="2"><name><lastname>Nadal</lastname></name><citizenship>Spanish</citizenship><points>390</points></player>
            </ATPList>"#,
        )
        .unwrap();
        r
    }

    #[test]
    fn query_service_returns_fragments() {
        let mut repo = repo();
        let q = SelectQuery::parse("Select p/points from p in ATPList//player where p/name/lastname = $who").unwrap();
        let svc = ServiceDef::query("getPoints", "atp", q).with_results(&["points"]);
        let resp = svc.execute(&[("who".into(), "Federer".into())], &mut repo).unwrap();
        assert_eq!(resp.items.len(), 1);
        assert_eq!(resp.items[0].to_xml(), "<points>475</points>");
        assert!(resp.effects.is_empty());
    }

    #[test]
    fn update_service_reports_effects() {
        let mut repo = repo();
        let action = UpdateAction::replace(
            Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = $who").unwrap(),
            vec![Fragment::elem_text("citizenship", "$new")],
        );
        let svc = ServiceDef::update("setCitizenship", "atp", action);
        let resp = svc.execute(&[("who".into(), "Nadal".into()), ("new".into(), "USA".into())], &mut repo).unwrap();
        assert_eq!(resp.effects.len(), 2, "delete + insert");
        assert_eq!(resp.items.len(), 1);
        assert_eq!(resp.items[0].text_content(), "USA");
        assert!(repo.get("atp").unwrap().to_xml().contains("USA"));
    }

    #[test]
    fn function_service() {
        let mut repo = Repository::new();
        let svc = ServiceDef::function("add", |params| {
            let a: i64 = params.iter().find(|(k, _)| k == "a").and_then(|(_, v)| v.parse().ok()).unwrap_or(0);
            let b: i64 = params.iter().find(|(k, _)| k == "b").and_then(|(_, v)| v.parse().ok()).unwrap_or(0);
            Ok(vec![Fragment::elem_text("sum", (a + b).to_string())])
        })
        .with_results(&["sum"]);
        let resp = svc.execute(&[("a".into(), "2".into()), ("b".into(), "40".into())], &mut repo).unwrap();
        assert_eq!(resp.items[0].text_content(), "42");
    }

    #[test]
    fn injected_fault_short_circuits() {
        let mut repo = repo();
        let q = SelectQuery::parse("Select p/points from p in ATPList//player").unwrap();
        let mut svc = ServiceDef::query("getPoints", "atp", q);
        svc.injected_fault = Some(Fault::injected("down for maintenance"));
        let err = svc.execute(&[], &mut repo).unwrap_err();
        assert_eq!(err.name, "InjectedFault");
    }

    #[test]
    fn missing_document_faults() {
        let mut repo = Repository::new();
        let q = SelectQuery::parse("Select p from p in r").unwrap();
        let svc = ServiceDef::query("q", "nope", q);
        let err = svc.execute(&[], &mut repo).unwrap_err();
        assert_eq!(err.name, "ExecutionFault");
        assert!(err.message.contains("nope"));
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = ServiceRegistry::new();
        assert!(reg.is_empty());
        reg.register(ServiceDef::function("a", |_| Ok(vec![])));
        reg.register(ServiceDef::function("b", |_| Ok(vec![])));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert!(reg.get("a").is_some());
        assert!(reg.get("c").is_none());
        reg.get_mut("a").unwrap().injected_fault = Some(Fault::injected("x"));
        assert!(reg.get("a").unwrap().injected_fault.is_some());
    }

    #[test]
    fn parameter_values_cannot_inject_markup() {
        // A hostile parameter value becomes character data, not elements.
        let mut repo = repo();
        let action = UpdateAction::replace(
            Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal;").unwrap(),
            vec![Fragment::elem_text("citizenship", "$new")],
        );
        let svc = ServiceDef::update("setCitizenship", "atp", action);
        let resp = svc.execute(&[("new".into(), "<evil attr=\"x\">&payload;</evil>".into())], &mut repo).unwrap();
        assert_eq!(resp.items.len(), 1);
        let item = &resp.items[0];
        assert_eq!(item.name().unwrap().local, "citizenship");
        assert!(item.children().iter().all(|c| matches!(c, Fragment::Text(_))), "no injected elements: {item:?}");
        assert!(item.text_content().contains("<evil"), "value preserved as text");
    }

    #[test]
    fn wsdl_descriptor_lists_results() {
        let svc = ServiceDef::function("getPoints", |_| Ok(vec![])).with_results(&["points"]);
        let wsdl = svc.wsdl();
        assert!(wsdl.contains(r#"name="getPoints""#), "{wsdl}");
        assert!(wsdl.contains(r#"xsd:element name="points""#), "{wsdl}");
    }

    #[test]
    fn duration_builder() {
        let svc = ServiceDef::function("slow", |_| Ok(vec![])).with_duration(3600);
        assert_eq!(svc.duration, 3600);
    }
}
