//! Lazy/eager materialization of embedded service calls.
//!
//! "An embedded service call may be invoked (or materialized): 1) in
//! response to a query on the AXML document …, or 2) periodically. …
//! There are two possible modes for AXML query evaluation: lazy and eager.
//! Of the two, lazy evaluation is the preferred mode and implies that only
//! those embedded service calls (in an AXML document) are materialized
//! whose results are required for evaluating the query. As the actual set
//! of service calls materialized is determined only at run-time, the
//! compensating operation for an AXML query cannot be pre-defined
//! statically." (§3.1)
//!
//! The engine therefore has two jobs:
//!
//! 1. **Relevance analysis** (lazy mode): decide which calls a query
//!    needs, using the call's current result children and the declared
//!    result names from the provider's WSDL (via
//!    [`ServiceInvoker::result_hints`]).
//! 2. **Effect capture**: every node the materialization inserts or
//!    deletes is reported as an [`Effect`] with a structural address, so
//!    the transaction layer can construct the compensating operation at
//!    run time.

use crate::consts;
use crate::fault::Fault;
use crate::repo::Repository;
use crate::sc::{HandlerAction, ParamValue, ScMode, ServiceCall};
use crate::service::ServiceRegistry;
use crate::view::TransparentView;
use axml_query::{Condition, Effect, NodePath, Operand, PathExpr, SelectQuery};
use axml_xml::{Document, Fragment, NodeId};
use std::collections::{BTreeMap, HashSet};

/// Query evaluation mode (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Materialize only the calls the query needs (the preferred mode).
    #[default]
    Lazy,
    /// Materialize every embedded call before evaluating.
    Eager,
}

/// A service call with its parameters fully resolved, ready to ship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedCall {
    /// Target peer address (`serviceURL`).
    pub service_url: String,
    /// Service namespace.
    pub service_ns: String,
    /// Method name.
    pub method: String,
    /// Resolved textual parameters.
    pub params: Vec<(String, String)>,
}

/// What a service invocation returns.
#[derive(Debug, Clone, Default)]
pub struct ServiceResponse {
    /// Result items: static XML nodes, or `axml:sc` fragments ("the
    /// invocation results may be static XML nodes or another service
    /// call").
    pub items: Vec<Fragment>,
    /// Effects the *provider* performed on its own documents while
    /// processing (update services). The transaction layer logs these for
    /// compensation.
    pub effects: Vec<Effect>,
}

/// How the engine reaches services — locally or across the P2P fabric.
pub trait ServiceInvoker {
    /// Invokes a resolved call, returning the response or a fault.
    fn invoke(&mut self, call: &ResolvedCall) -> Result<ServiceResponse, Fault>;

    /// Declared result element names for a call, if known (WSDL lookup).
    /// Used by lazy relevance analysis.
    fn result_hints(&self, _call: &ResolvedCall) -> Option<Vec<String>> {
        None
    }
}

/// One attempted invocation, as recorded in the materialization report.
#[derive(Debug, Clone)]
pub struct InvocationRecord {
    /// Target peer address.
    pub service_url: String,
    /// Method invoked.
    pub method: String,
    /// Retries performed by fault handlers.
    pub retries: u32,
    /// Name of the fault the invocation ultimately surfaced, if any
    /// (after handlers ran; a substituted result clears it).
    pub fault: Option<String>,
    /// Number of result items received/substituted.
    pub items: usize,
    /// Provider-side effects shipped back with the response.
    pub provider_effects: Vec<Effect>,
}

/// Everything one materialization pass did.
#[derive(Debug, Clone, Default)]
pub struct MaterializationReport {
    /// Local document effects, in application order.
    pub effects: Vec<Effect>,
    /// Invocations attempted (including nested/param calls and retries).
    pub invocations: Vec<InvocationRecord>,
    /// Embedded calls successfully materialized.
    pub materialized: usize,
    /// Total local nodes affected (the paper's cost measure).
    pub cost_nodes: usize,
    /// Total simulated wait time spent in `axml:retry` handlers.
    pub retry_wait: u64,
}

impl MaterializationReport {
    fn merge(&mut self, other: MaterializationReport) {
        self.effects.extend(other.effects);
        self.invocations.extend(other.invocations);
        self.materialized += other.materialized;
        self.cost_nodes += other.cost_nodes;
        self.retry_wait += other.retry_wait;
    }
}

/// The materialization engine.
#[derive(Debug, Clone)]
pub struct MaterializationEngine {
    /// Lazy or eager evaluation.
    pub mode: EvalMode,
    /// Recursion bound for nested calls (param calls and calls returned
    /// as results).
    pub max_depth: usize,
    /// Values for `$name (external value)` parameters.
    pub externals: BTreeMap<String, String>,
}

impl Default for MaterializationEngine {
    fn default() -> Self {
        MaterializationEngine { mode: EvalMode::Lazy, max_depth: 8, externals: BTreeMap::new() }
    }
}

impl MaterializationEngine {
    /// An engine with the given mode and defaults otherwise.
    pub fn new(mode: EvalMode) -> MaterializationEngine {
        MaterializationEngine { mode, ..Default::default() }
    }

    /// Builder: provides an external parameter value.
    pub fn with_external(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.externals.insert(name.into(), value.into());
        self
    }

    /// Evaluates `query` over `doc`, materializing embedded calls
    /// according to the mode first. Returns the selected (original)
    /// nodes and the report of everything materialization did.
    pub fn query(
        &self,
        doc: &mut Document,
        query: &SelectQuery,
        invoker: &mut dyn ServiceInvoker,
    ) -> Result<(Vec<NodeId>, MaterializationReport), Fault> {
        let report = self.materialize_for_query(doc, query, invoker)?;
        let hits = TransparentView::eval(doc, query).map_err(|e| Fault::execution(format!("query failed: {e}")))?;
        Ok((hits, report))
    }

    /// Materializes the calls `query` needs (lazy) or all calls (eager).
    ///
    /// Materializing a call can insert *new* embedded calls (results that
    /// are themselves service calls); the engine iterates to a fixpoint,
    /// bounded by `max_depth` rounds.
    pub fn materialize_for_query(
        &self,
        doc: &mut Document,
        query: &SelectQuery,
        invoker: &mut dyn ServiceInvoker,
    ) -> Result<MaterializationReport, Fault> {
        let names = QueryNames::collect(query);
        let mut report = MaterializationReport::default();
        let mut done: HashSet<NodeId> = HashSet::new();
        for _round in 0..self.max_depth {
            let calls = ServiceCall::scan(doc);
            let todo: Vec<ServiceCall> = calls
                .into_iter()
                .filter(|c| c.node.map(|n| !done.contains(&n)).unwrap_or(false))
                .filter(|c| match self.mode {
                    EvalMode::Eager => true,
                    EvalMode::Lazy => self.relevant(doc, c, query, &names, invoker),
                })
                .collect();
            if todo.is_empty() {
                break;
            }
            for call in todo {
                done.insert(call.node.expect("scanned calls have nodes"));
                let sub = self.materialize_call(doc, &call, invoker, 0)?;
                report.merge(sub);
            }
        }
        Ok(report)
    }

    /// Materializes every embedded call (one fixpoint pass).
    pub fn materialize_all(
        &self,
        doc: &mut Document,
        invoker: &mut dyn ServiceInvoker,
    ) -> Result<MaterializationReport, Fault> {
        // Reuse the query path with a query that needs everything.
        let q = SelectQuery::parse("Select v from v in *").expect("static query parses");
        let eager = MaterializationEngine { mode: EvalMode::Eager, ..self.clone() };
        eager.materialize_for_query(doc, &q, invoker)
    }

    /// Lazy relevance: would materializing `call` contribute to `query`?
    ///
    /// Two conditions, both conservative:
    /// 1. the call sits inside a *potential binding subtree* — under (or
    ///    at) a node the `from` path can select, ignoring the `where`
    ///    clause (whose data may itself need materialization);
    /// 2. the query's name tests intersect the call's known result names
    ///    (current result children + WSDL hints); wildcard queries and
    ///    calls with unknown results count as intersecting.
    pub fn relevant(
        &self,
        doc: &Document,
        call: &ServiceCall,
        query: &SelectQuery,
        names: &QueryNames,
        invoker: &dyn ServiceInvoker,
    ) -> bool {
        let Some(sc_node) = call.node else { return false };
        // Condition 1: position check against potential bindings on the view.
        let view = TransparentView::build(doc);
        let potential: Vec<NodeId> =
            query.from.eval(&view.view).into_iter().filter_map(|v| view.to_original(v)).collect();
        let in_scope = potential.iter().any(|b| sc_node == *b || doc.is_descendant_of(sc_node, *b));
        if !in_scope {
            return false;
        }
        // Condition 2: name intersection.
        if names.any_wildcard {
            return true;
        }
        let mut known: Vec<String> = call.result_names(doc).iter().map(|q| q.local.clone()).collect();
        if let Ok(resolved) = self.peek_resolved(call) {
            if let Some(hints) = invoker.result_hints(&resolved) {
                known.extend(hints);
            }
        }
        if known.is_empty() {
            return true; // unknown results: conservatively materialize
        }
        known.iter().any(|k| names.names.contains(k))
    }

    /// Resolves parameters without invoking nested calls (for relevance
    /// probing only): nested-call params resolve to a placeholder.
    fn peek_resolved(&self, call: &ServiceCall) -> Result<ResolvedCall, Fault> {
        let mut params = Vec::with_capacity(call.params.len());
        for p in &call.params {
            let v = match &p.value {
                ParamValue::Literal(v) => v.clone(),
                ParamValue::External(name) => self.externals.get(name).cloned().unwrap_or_default(),
                ParamValue::Call(_) => String::new(),
                ParamValue::Xml(frags) => frags.iter().map(Fragment::text_content).collect(),
            };
            params.push((p.name.clone(), v));
        }
        Ok(ResolvedCall {
            service_url: call.service_url.clone(),
            service_ns: call.service_ns.clone(),
            method: call.method.clone(),
            params,
        })
    }

    /// Materializes one embedded call: resolves parameters (recursively
    /// invoking param calls — local nesting), invokes the service (running
    /// fault handlers), and applies the results per the call's mode.
    pub fn materialize_call(
        &self,
        doc: &mut Document,
        call: &ServiceCall,
        invoker: &mut dyn ServiceInvoker,
        depth: usize,
    ) -> Result<MaterializationReport, Fault> {
        if depth > self.max_depth {
            return Err(Fault::execution(format!(
                "nested materialization exceeded max depth {} at {}",
                self.max_depth, call.method
            )));
        }
        let mut report = MaterializationReport::default();
        let params = self.resolve_params(call, invoker, &mut report, depth)?;
        let resolved = ResolvedCall {
            service_url: call.service_url.clone(),
            service_ns: call.service_ns.clone(),
            method: call.method.clone(),
            params,
        };
        let items = self.invoke_with_handlers(call, &resolved, invoker, &mut report)?;
        if let Some(sc_node) = call.node {
            self.apply_results(doc, call, sc_node, &items, &mut report)?;
            report.materialized += 1;
            // Results that are themselves service calls: nested invocation.
            let mut nested = Vec::new();
            if let Ok(children) = doc.children(sc_node) {
                for &c in children {
                    if let Ok(name) = doc.name(c) {
                        if consts::is_sc(name.prefix.as_deref(), &name.local) {
                            if let Some(nc) = ServiceCall::parse(doc, c) {
                                nested.push(nc);
                            }
                        }
                    }
                }
            }
            for nc in nested {
                let sub = self.materialize_call(doc, &nc, invoker, depth + 1)?;
                report.merge(sub);
            }
        }
        report.cost_nodes = report.effects.iter().map(Effect::cost_nodes).sum();
        Ok(report)
    }

    fn resolve_params(
        &self,
        call: &ServiceCall,
        invoker: &mut dyn ServiceInvoker,
        report: &mut MaterializationReport,
        depth: usize,
    ) -> Result<Vec<(String, String)>, Fault> {
        let mut out = Vec::with_capacity(call.params.len());
        for p in &call.params {
            let value =
                match &p.value {
                    ParamValue::Literal(v) => v.clone(),
                    ParamValue::External(name) => self.externals.get(name).cloned().ok_or_else(|| {
                        Fault::new("MissingExternal", format!("no value for external parameter ${name}"))
                    })?,
                    ParamValue::Xml(frags) => frags.iter().map(Fragment::text_content).collect(),
                    ParamValue::Call(nested) => {
                        // Local nesting: "evaluating a service call may require
                        // evaluating the parameters' service calls first".
                        if depth >= self.max_depth {
                            return Err(Fault::execution("parameter call nesting too deep"));
                        }
                        let resolved = self.resolve_params(nested, invoker, report, depth + 1)?;
                        let rc = ResolvedCall {
                            service_url: nested.service_url.clone(),
                            service_ns: nested.service_ns.clone(),
                            method: nested.method.clone(),
                            params: resolved,
                        };
                        let items = self.invoke_with_handlers(nested, &rc, invoker, report)?;
                        items.iter().map(Fragment::text_content).collect::<String>()
                    }
                };
            out.push((p.name.clone(), value));
        }
        Ok(out)
    }

    /// Invokes, consulting the call's fault handlers on failure (§3.2):
    /// `axml:retry` re-attempts (optionally against a replica peer), a
    /// substitution handler supplies a default result, anything else
    /// propagates the fault to the caller.
    fn invoke_with_handlers(
        &self,
        call: &ServiceCall,
        resolved: &ResolvedCall,
        invoker: &mut dyn ServiceInvoker,
        report: &mut MaterializationReport,
    ) -> Result<Vec<Fragment>, Fault> {
        let mut record = InvocationRecord {
            service_url: resolved.service_url.clone(),
            method: resolved.method.clone(),
            retries: 0,
            fault: None,
            items: 0,
            provider_effects: Vec::new(),
        };
        let first = invoker.invoke(resolved);
        match first {
            Ok(resp) => {
                record.items = resp.items.len();
                record.provider_effects = resp.effects.clone();
                report.invocations.push(record);
                Ok(resp.items)
            }
            Err(fault) => {
                let handler = call.handler_for(&fault.name).cloned();
                match handler.map(|h| h.action) {
                    Some(HandlerAction::Retry { times, wait, alternative }) => {
                        let alt_resolved = alternative.as_ref().map(|alt| ResolvedCall {
                            service_url: alt.service_url.clone(),
                            service_ns: alt.service_ns.clone(),
                            method: alt.method.clone(),
                            // Replica retries reuse the already-resolved params.
                            params: resolved.params.clone(),
                        });
                        let target = alt_resolved.as_ref().unwrap_or(resolved);
                        let mut last_fault = fault;
                        for _attempt in 0..times {
                            record.retries += 1;
                            report.retry_wait += wait;
                            match invoker.invoke(target) {
                                Ok(resp) => {
                                    record.items = resp.items.len();
                                    record.provider_effects = resp.effects.clone();
                                    report.invocations.push(record);
                                    return Ok(resp.items);
                                }
                                Err(f) => last_fault = f,
                            }
                        }
                        record.fault = Some(last_fault.name.clone());
                        report.invocations.push(record);
                        Err(last_fault)
                    }
                    Some(HandlerAction::Substitute(frags)) => {
                        record.items = frags.len();
                        report.invocations.push(record);
                        Ok(frags)
                    }
                    Some(HandlerAction::Propagate) | None => {
                        record.fault = Some(fault.name.clone());
                        report.invocations.push(record);
                        Err(fault)
                    }
                }
            }
        }
    }

    /// Applies invocation results to the call's element per its mode,
    /// logging every insert/delete as an [`Effect`].
    fn apply_results(
        &self,
        doc: &mut Document,
        call: &ServiceCall,
        sc_node: NodeId,
        items: &[Fragment],
        report: &mut MaterializationReport,
    ) -> Result<(), Fault> {
        let effects = apply_call_results(doc, call, sc_node, items)?;
        report.effects.extend(effects);
        Ok(())
    }
}

/// Applies invocation results to an `axml:sc` element per the call's mode
/// (§1: `replace` deletes the previous results in place, `merge` appends
/// as siblings), returning the primitive effects for the transaction log.
///
/// Exposed for the distributed engine in `axml-core`, which applies
/// results arriving asynchronously from remote peers.
pub fn apply_call_results(
    doc: &mut Document,
    call: &ServiceCall,
    sc_node: NodeId,
    items: &[Fragment],
) -> Result<Vec<Effect>, Fault> {
    let tree_err = |e: axml_xml::TreeError| Fault::execution(format!("applying results failed: {e}"));
    let query_err = |e: axml_query::QueryError| Fault::execution(format!("applying results failed: {e}"));
    let mut effects = Vec::new();
    let mut insert_at = None;
    if call.mode == ScMode::Replace {
        // Delete previous results, remembering the first slot.
        let previous = call.result_children(doc);
        let sc_path = NodePath::of(doc, sc_node).map_err(query_err)?;
        for &old in previous.iter().rev() {
            let (fragment, _parent, position) = doc.remove_to_fragment(old).map_err(tree_err)?;
            insert_at = Some(position);
            effects.push(Effect::Deleted { fragment, parent_path: sc_path.clone(), position });
        }
    }
    let base = match insert_at {
        Some(p) => p,
        None => doc.children(sc_node).map_err(tree_err)?.len(), // merge: append after previous results
    };
    for (k, item) in items.iter().enumerate() {
        let node = doc.insert_fragment(sc_node, base + k, item).map_err(tree_err)?;
        let path = NodePath::of(doc, node).map_err(query_err)?;
        effects.push(Effect::Inserted { node, path, fragment: item.clone() });
    }
    Ok(effects)
}

/// The name tests a query can match (relevance analysis input).
#[derive(Debug, Clone, Default)]
pub struct QueryNames {
    /// Local element names mentioned anywhere in projections or condition.
    pub names: HashSet<String>,
    /// True if any step uses `*` (matches everything).
    pub any_wildcard: bool,
}

impl QueryNames {
    /// Collects the name tests of a query.
    pub fn collect(query: &SelectQuery) -> QueryNames {
        let mut qn = QueryNames::default();
        for p in &query.projections {
            qn.add_path(p);
        }
        qn.add_condition(&query.condition);
        qn
    }

    fn add_path(&mut self, path: &PathExpr) {
        for step in &path.steps {
            match &step.test {
                axml_query::NameTest::Any => {
                    // `..`/`.` steps carry an Any test but don't select by
                    // name; only a real wildcard counts.
                    if matches!(step.axis, axml_query::Axis::Child | axml_query::Axis::Descendant) {
                        self.any_wildcard = true;
                    }
                }
                axml_query::NameTest::Name(q) => {
                    self.names.insert(q.local.clone());
                }
            }
        }
    }

    fn add_condition(&mut self, cond: &Condition) {
        match cond {
            Condition::True => {}
            Condition::Cmp { left, right, .. } => {
                for op in [left, right] {
                    if let Operand::Path { path, .. } = op {
                        self.add_path(path);
                    }
                }
            }
            Condition::Exists(p) => self.add_path(p),
            Condition::And(a, b) | Condition::Or(a, b) => {
                self.add_condition(a);
                self.add_condition(b);
            }
            Condition::Not(c) => self.add_condition(c),
        }
    }
}

/// Invokes services hosted on the same peer (registry + repository).
///
/// The distributed flavor lives in `axml-p2p`; this local invoker is what
/// a peer uses for its own services and what unit tests use.
pub struct LocalInvoker<'a> {
    /// The peer's service registry.
    pub registry: &'a ServiceRegistry,
    /// The peer's documents.
    pub repo: &'a mut Repository,
}

impl ServiceInvoker for LocalInvoker<'_> {
    fn invoke(&mut self, call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
        let def = self
            .registry
            .get(&call.method)
            .ok_or_else(|| Fault::no_such_service(format!("{} (at {})", call.method, call.service_url)))?;
        def.execute(&call.params, self.repo)
    }

    fn result_hints(&self, call: &ResolvedCall) -> Option<Vec<String>> {
        self.registry.get(&call.method).map(|d| d.result_names.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceDef;

    /// The paper's ATPList.xml with both embedded calls.
    const ATP: &str = r#"<ATPList date="18042005">
        <player rank="1">
            <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
            <citizenship>Swiss</citizenship>
            <axml:sc mode="replace" serviceNameSpace="getPoints" serviceURL="peer://ap2" methodName="getPoints">
                <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
                <points>475</points>
            </axml:sc>
            <axml:sc mode="merge" serviceNameSpace="g" serviceURL="peer://ap3" methodName="getGrandSlamsWonbyYear">
                <axml:params>
                    <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
                    <axml:param name="year"><axml:value>$year (external value)</axml:value></axml:param>
                </axml:params>
                <grandslamswon year="2003">A, W</grandslamswon>
                <grandslamswon year="2004">A, U</grandslamswon>
            </axml:sc>
        </player>
    </ATPList>"#;

    /// A registry with deterministic tennis services.
    fn registry() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        reg.register(
            ServiceDef::function("getPoints", |_params| Ok(vec![Fragment::elem_text("points", "890")]))
                .with_results(&["points"]),
        );
        reg.register(
            ServiceDef::function("getGrandSlamsWonbyYear", |params| {
                let year = params.iter().find(|(k, _)| k == "year").map(|(_, v)| v.clone()).unwrap_or_default();
                Ok(vec![Fragment::elem("grandslamswon").with_attr("year", year).with_text("A, F")])
            })
            .with_results(&["grandslamswon"]),
        );
        reg
    }

    fn engine() -> MaterializationEngine {
        MaterializationEngine::new(EvalMode::Lazy).with_external("year", "2005")
    }

    #[test]
    fn paper_query_a_materializes_only_grandslams() {
        // Query A: Select p/citizenship, p/grandslamswon …
        let mut doc = Document::parse(ATP).unwrap();
        let mut repo = Repository::new();
        let reg = registry();
        let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
        let q = SelectQuery::parse(
            "Select p/citizenship, p/grandslamswon from p in ATPList//player where p/name/lastname = Federer;",
        )
        .unwrap();
        let (hits, report) = engine().query(&mut doc, &q, &mut inv).unwrap();
        assert_eq!(report.materialized, 1, "only getGrandSlamsWonbyYear");
        assert_eq!(report.invocations.len(), 1);
        assert_eq!(report.invocations[0].method, "getGrandSlamsWonbyYear");
        // merge mode: 2005 appended, previous results kept.
        let xml = doc.to_xml();
        assert!(xml.contains(r#"<grandslamswon year="2003">A, W</grandslamswon>"#));
        assert!(xml.contains(r#"<grandslamswon year="2005">A, F</grandslamswon>"#), "{xml}");
        assert!(xml.contains("<points>475</points>"), "getPoints NOT materialized: {xml}");
        // The only change w.r.t. the original: one inserted node tree.
        assert_eq!(report.effects.len(), 1);
        assert!(matches!(&report.effects[0], Effect::Inserted { fragment, .. }
            if fragment.attr("year") == Some("2005")));
        // Query results: citizenship + 3 grandslamswon.
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn paper_query_b_materializes_only_points() {
        // Query B: Select p/citizenship, p/points …
        let mut doc = Document::parse(ATP).unwrap();
        let mut repo = Repository::new();
        let reg = registry();
        let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
        let q = SelectQuery::parse(
            "Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer;",
        )
        .unwrap();
        let (hits, report) = engine().query(&mut doc, &q, &mut inv).unwrap();
        assert_eq!(report.materialized, 1, "only getPoints");
        assert_eq!(report.invocations[0].method, "getPoints");
        // replace mode: 475 → 890, logged as delete+insert.
        let xml = doc.to_xml();
        assert!(xml.contains("<points>890</points>"), "{xml}");
        assert!(!xml.contains("475"), "{xml}");
        assert_eq!(report.effects.len(), 2);
        assert!(matches!(&report.effects[0], Effect::Deleted { fragment, .. } if fragment.text_content() == "475"));
        assert!(matches!(&report.effects[1], Effect::Inserted { fragment, .. } if fragment.text_content() == "890"));
        assert_eq!(hits.len(), 2);
        assert_eq!(doc.text_content(hits[1]).unwrap(), "890");
    }

    #[test]
    fn eager_materializes_everything() {
        let mut doc = Document::parse(ATP).unwrap();
        let mut repo = Repository::new();
        let reg = registry();
        let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
        let q = SelectQuery::parse("Select p/citizenship from p in ATPList//player").unwrap();
        let engine = MaterializationEngine::new(EvalMode::Eager).with_external("year", "2005");
        let (_, report) = engine.query(&mut doc, &q, &mut inv).unwrap();
        assert_eq!(report.materialized, 2);
    }

    #[test]
    fn lazy_skips_out_of_scope_calls() {
        // Query bound to player rank 2 must not touch rank-1 calls.
        let with_second_player = ATP.replace(
            "</ATPList>",
            r#"<player rank="2"><name><lastname>Nadal</lastname></name><citizenship>Spanish</citizenship></player></ATPList>"#,
        );
        let mut doc = Document::parse(&with_second_player).unwrap();
        let mut repo = Repository::new();
        let reg = registry();
        let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
        let q = SelectQuery::parse("Select p/points from p in ATPList/player[@rank=2]").unwrap();
        let (_, report) = engine().query(&mut doc, &q, &mut inv).unwrap();
        assert_eq!(report.materialized, 0, "rank-1 calls are outside the binding subtree");
    }

    #[test]
    fn wildcard_queries_are_conservative() {
        let mut doc = Document::parse(ATP).unwrap();
        let mut repo = Repository::new();
        let reg = registry();
        let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
        let q = SelectQuery::parse("Select p/* from p in ATPList//player").unwrap();
        let (_, report) = engine().query(&mut doc, &q, &mut inv).unwrap();
        assert_eq!(report.materialized, 2, "wildcard needs everything");
    }

    #[test]
    fn where_clause_names_count_for_relevance() {
        let mut doc = Document::parse(ATP).unwrap();
        let mut repo = Repository::new();
        let reg = registry();
        let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
        // Projection doesn't mention points, but the filter does.
        let q = SelectQuery::parse("Select p/citizenship from p in ATPList//player where p/points > 500").unwrap();
        let (hits, report) = engine().query(&mut doc, &q, &mut inv).unwrap();
        assert_eq!(report.materialized, 1);
        assert_eq!(report.invocations[0].method, "getPoints");
        assert_eq!(hits.len(), 1, "890 > 500 after refresh");
    }

    #[test]
    fn missing_external_faults() {
        let mut doc = Document::parse(ATP).unwrap();
        let mut repo = Repository::new();
        let reg = registry();
        let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
        let q = SelectQuery::parse("Select p/grandslamswon from p in ATPList//player").unwrap();
        let engine = MaterializationEngine::new(EvalMode::Lazy); // no external for $year
        let err = engine.query(&mut doc, &q, &mut inv).unwrap_err();
        assert_eq!(err.name, "MissingExternal");
    }

    #[test]
    fn retry_handler_retries_then_succeeds() {
        use std::cell::Cell;
        struct Flaky<'a> {
            fails_left: &'a Cell<u32>,
        }
        impl ServiceInvoker for Flaky<'_> {
            fn invoke(&mut self, _call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
                if self.fails_left.get() > 0 {
                    self.fails_left.set(self.fails_left.get() - 1);
                    Err(Fault::new("A", "transient"))
                } else {
                    Ok(ServiceResponse { items: vec![Fragment::elem_text("r", "ok")], effects: vec![] })
                }
            }
        }
        let src = r#"<r>
            <axml:sc methodName="m" serviceURL="peer://x" serviceNameSpace="m">
                <axml:catch faultName="A"><axml:retry times="3" wait="10"/></axml:catch>
            </axml:sc>
        </r>"#;
        let mut doc = Document::parse(src).unwrap();
        let call = ServiceCall::scan(&doc).remove(0);
        let fails = Cell::new(2);
        let mut inv = Flaky { fails_left: &fails };
        let report = MaterializationEngine::default().materialize_call(&mut doc, &call, &mut inv, 0).unwrap();
        assert_eq!(report.invocations[0].retries, 2);
        assert_eq!(report.retry_wait, 20);
        assert!(doc.to_xml().contains("<r>ok</r>"));
    }

    #[test]
    fn retry_exhaustion_propagates() {
        struct AlwaysFails;
        impl ServiceInvoker for AlwaysFails {
            fn invoke(&mut self, _call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
                Err(Fault::new("A", "permanent"))
            }
        }
        let src = r#"<r>
            <axml:sc methodName="m" serviceURL="peer://x" serviceNameSpace="m">
                <axml:catch faultName="A"><axml:retry times="2" wait="5"/></axml:catch>
            </axml:sc>
        </r>"#;
        let mut doc = Document::parse(src).unwrap();
        let call = ServiceCall::scan(&doc).remove(0);
        let err = MaterializationEngine::default().materialize_call(&mut doc, &call, &mut AlwaysFails, 0).unwrap_err();
        assert_eq!(err.name, "A");
    }

    #[test]
    fn retry_uses_replica_alternative() {
        struct OnlyReplica;
        impl ServiceInvoker for OnlyReplica {
            fn invoke(&mut self, call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
                if call.service_url == "peer://replica" {
                    Ok(ServiceResponse { items: vec![Fragment::elem_text("r", "from-replica")], effects: vec![] })
                } else {
                    Err(Fault::new("A", "primary down"))
                }
            }
        }
        let src = r#"<r>
            <axml:sc methodName="m" serviceURL="peer://primary" serviceNameSpace="m">
                <axml:catch faultName="A">
                    <axml:retry times="1" wait="0">
                        <axml:sc methodName="m" serviceURL="peer://replica" serviceNameSpace="m"/>
                    </axml:retry>
                </axml:catch>
            </axml:sc>
        </r>"#;
        let mut doc = Document::parse(src).unwrap();
        let call = ServiceCall::scan(&doc).remove(0);
        MaterializationEngine::default().materialize_call(&mut doc, &call, &mut OnlyReplica, 0).unwrap();
        assert!(doc.to_xml().contains("from-replica"));
    }

    #[test]
    fn substitute_handler_supplies_default() {
        struct Down;
        impl ServiceInvoker for Down {
            fn invoke(&mut self, _call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
                Err(Fault::new("B", "down"))
            }
        }
        let src = r#"<r>
            <axml:sc methodName="m" serviceURL="peer://x" serviceNameSpace="m">
                <axml:catch faultName="B"><fallback>default</fallback></axml:catch>
            </axml:sc>
        </r>"#;
        let mut doc = Document::parse(src).unwrap();
        let call = ServiceCall::scan(&doc).remove(0);
        let report = MaterializationEngine::default().materialize_call(&mut doc, &call, &mut Down, 0).unwrap();
        assert!(doc.to_xml().contains("<fallback>default</fallback>"));
        assert!(report.invocations[0].fault.is_none(), "handled faults are cleared");
    }

    #[test]
    fn unhandled_fault_propagates() {
        struct Down;
        impl ServiceInvoker for Down {
            fn invoke(&mut self, _call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
                Err(Fault::new("C", "down"))
            }
        }
        let src = r#"<r>
            <axml:sc methodName="m" serviceURL="peer://x" serviceNameSpace="m">
                <axml:catch faultName="B"><fallback>default</fallback></axml:catch>
            </axml:sc>
        </r>"#;
        let mut doc = Document::parse(src).unwrap();
        let call = ServiceCall::scan(&doc).remove(0);
        let err = MaterializationEngine::default().materialize_call(&mut doc, &call, &mut Down, 0).unwrap_err();
        assert_eq!(err.name, "C");
    }

    #[test]
    fn param_call_local_nesting() {
        // outer(param = inner()) — inner is invoked first, its text result
        // becomes the parameter.
        struct Fabric;
        impl ServiceInvoker for Fabric {
            fn invoke(&mut self, call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
                match call.method.as_str() {
                    "inner" => Ok(ServiceResponse { items: vec![Fragment::elem_text("v", "42")], effects: vec![] }),
                    "outer" => {
                        let p = call.params.iter().find(|(k, _)| k == "in").map(|(_, v)| v.clone()).unwrap_or_default();
                        Ok(ServiceResponse {
                            items: vec![Fragment::elem_text("out", format!("got-{p}"))],
                            effects: vec![],
                        })
                    }
                    other => Err(Fault::no_such_service(other)),
                }
            }
        }
        let src = r#"<r>
            <axml:sc methodName="outer" serviceURL="peer://a" serviceNameSpace="o">
                <axml:params>
                    <axml:param name="in">
                        <axml:sc methodName="inner" serviceURL="peer://b" serviceNameSpace="i"/>
                    </axml:param>
                </axml:params>
            </axml:sc>
        </r>"#;
        let mut doc = Document::parse(src).unwrap();
        let call = ServiceCall::scan(&doc).remove(0);
        let report = MaterializationEngine::default().materialize_call(&mut doc, &call, &mut Fabric, 0).unwrap();
        assert_eq!(report.invocations.len(), 2, "inner then outer");
        assert_eq!(report.invocations[0].method, "inner");
        assert_eq!(report.invocations[1].method, "outer");
        assert!(doc.to_xml().contains("<out>got-42</out>"));
    }

    #[test]
    fn result_service_call_triggers_nested_invocation() {
        // A service returns another service call as its result.
        struct Fabric;
        impl ServiceInvoker for Fabric {
            fn invoke(&mut self, call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
                match call.method.as_str() {
                    "indirect" => {
                        let sc = ServiceCall::build("peer://b", "direct", ScMode::Replace);
                        Ok(ServiceResponse { items: vec![sc.to_fragment()], effects: vec![] })
                    }
                    "direct" => {
                        Ok(ServiceResponse { items: vec![Fragment::elem_text("final", "yes")], effects: vec![] })
                    }
                    other => Err(Fault::no_such_service(other)),
                }
            }
        }
        let src = r#"<r><axml:sc methodName="indirect" serviceURL="peer://a" serviceNameSpace="x"/></r>"#;
        let mut doc = Document::parse(src).unwrap();
        let call = ServiceCall::scan(&doc).remove(0);
        let report = MaterializationEngine::default().materialize_call(&mut doc, &call, &mut Fabric, 0).unwrap();
        assert_eq!(report.materialized, 2);
        assert!(doc.to_xml().contains("<final>yes</final>"), "{}", doc.to_xml());
        // The nested call's results live inside the returned sc element,
        // which the transparent view elides.
        let q = SelectQuery::parse("Select v/final from v in r").unwrap();
        let hits = TransparentView::eval(&doc, &q).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn depth_limit_stops_runaway_nesting() {
        // A service that always returns another call to itself.
        struct Loopy;
        impl ServiceInvoker for Loopy {
            fn invoke(&mut self, _call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
                let sc = ServiceCall::build("peer://a", "loop", ScMode::Replace);
                Ok(ServiceResponse { items: vec![sc.to_fragment()], effects: vec![] })
            }
        }
        let src = r#"<r><axml:sc methodName="loop" serviceURL="peer://a" serviceNameSpace="x"/></r>"#;
        let mut doc = Document::parse(src).unwrap();
        let call = ServiceCall::scan(&doc).remove(0);
        let engine = MaterializationEngine { max_depth: 3, ..Default::default() };
        let err = engine.materialize_call(&mut doc, &call, &mut Loopy, 0).unwrap_err();
        assert!(err.message.contains("max depth"), "{err}");
    }

    #[test]
    fn materialize_all_fixpoint() {
        let mut doc = Document::parse(ATP).unwrap();
        let mut repo = Repository::new();
        let reg = registry();
        let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
        let engine = MaterializationEngine::new(EvalMode::Eager).with_external("year", "2005");
        let report = engine.materialize_all(&mut doc, &mut inv).unwrap();
        assert_eq!(report.materialized, 2);
    }

    #[test]
    fn query_names_collection() {
        let q = SelectQuery::parse(
            "Select p/citizenship, p/a/b from p in ATPList//player where p/points > 1 and exists p/name",
        )
        .unwrap();
        let names = QueryNames::collect(&q);
        for n in ["citizenship", "a", "b", "points", "name"] {
            assert!(names.names.contains(n), "{n}");
        }
        assert!(!names.any_wildcard);
        let q = SelectQuery::parse("Select p/* from p in r").unwrap();
        assert!(QueryNames::collect(&q).any_wildcard);
        // Parent steps don't count as wildcards.
        let q = SelectQuery::parse("Select p/a/.. from p in r").unwrap();
        assert!(!QueryNames::collect(&q).any_wildcard);
    }
}

/// Bookkeeping for periodic materialization: last invocation time per
/// `axml:sc` node.
pub type PeriodicTable = std::collections::BTreeMap<NodeId, u64>;

impl MaterializationEngine {
    /// The embedded calls whose `frequency` interval has elapsed —
    /// "an embedded service call may be invoked … periodically (specified
    /// by the `frequency` attribute)". Calls never invoked before are due
    /// immediately.
    pub fn due_calls(&self, doc: &Document, table: &PeriodicTable, now: u64) -> Vec<ServiceCall> {
        ServiceCall::scan(doc)
            .into_iter()
            .filter(|c| match (c.frequency, c.node) {
                (Some(freq), Some(node)) => match table.get(&node) {
                    None => true,
                    Some(&last) => now.saturating_sub(last) >= freq,
                },
                _ => false,
            })
            .collect()
    }

    /// Materializes every due periodic call, updating the table.
    pub fn materialize_due(
        &self,
        doc: &mut Document,
        invoker: &mut dyn ServiceInvoker,
        table: &mut PeriodicTable,
        now: u64,
    ) -> Result<MaterializationReport, Fault> {
        let due = self.due_calls(doc, table, now);
        let mut report = MaterializationReport::default();
        for call in due {
            let node = call.node.expect("scanned calls have nodes");
            let sub = self.materialize_call(doc, &call, invoker, 0)?;
            report.merge(sub);
            table.insert(node, now);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod periodic_tests {
    use super::*;

    struct Counter(u32);

    impl ServiceInvoker for Counter {
        fn invoke(&mut self, _call: &ResolvedCall) -> Result<ServiceResponse, Fault> {
            self.0 += 1;
            Ok(ServiceResponse { items: vec![Fragment::elem_text("tick", self.0.to_string())], effects: vec![] })
        }
    }

    const SRC: &str = r#"<r>
        <axml:sc methodName="feed" serviceURL="peer://a" serviceNameSpace="f" frequency="10" mode="replace"/>
        <axml:sc methodName="once" serviceURL="peer://a" serviceNameSpace="o" mode="replace"/>
    </r>"#;

    #[test]
    fn only_frequency_calls_are_periodic() {
        let doc = Document::parse(SRC).unwrap();
        let engine = MaterializationEngine::default();
        let table = PeriodicTable::new();
        let due = engine.due_calls(&doc, &table, 0);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].method, "feed");
    }

    #[test]
    fn due_respects_interval() {
        let mut doc = Document::parse(SRC).unwrap();
        let engine = MaterializationEngine::default();
        let mut table = PeriodicTable::new();
        let mut inv = Counter(0);
        // t=0: due (never invoked); result replaces.
        let r = engine.materialize_due(&mut doc, &mut inv, &mut table, 0).unwrap();
        assert_eq!(r.materialized, 1);
        assert!(doc.to_xml().contains("<tick>1</tick>"));
        // t=5: not due yet.
        let r = engine.materialize_due(&mut doc, &mut inv, &mut table, 5).unwrap();
        assert_eq!(r.materialized, 0);
        // t=10: due again; replace mode swaps the tick.
        let r = engine.materialize_due(&mut doc, &mut inv, &mut table, 10).unwrap();
        assert_eq!(r.materialized, 1);
        assert!(doc.to_xml().contains("<tick>2</tick>"));
        assert!(!doc.to_xml().contains("<tick>1</tick>"));
    }

    #[test]
    fn periodic_effects_feed_the_log_like_any_materialization() {
        let mut doc = Document::parse(SRC).unwrap();
        let engine = MaterializationEngine::default();
        let mut table = PeriodicTable::new();
        let mut inv = Counter(0);
        let before = doc.to_xml();
        let r1 = engine.materialize_due(&mut doc, &mut inv, &mut table, 0).unwrap();
        let r2 = engine.materialize_due(&mut doc, &mut inv, &mut table, 20).unwrap();
        let mut all = r1.effects;
        all.extend(r2.effects);
        // Compensating the combined log restores the original document.
        for e in all.iter().rev() {
            match e {
                axml_query::Effect::Deleted { fragment, parent_path, position } => {
                    axml_query::UpdateAction::insert_at(
                        axml_query::Locator::Node(parent_path.clone()),
                        vec![fragment.clone()],
                        axml_query::InsertPos::At(*position),
                    )
                    .apply(&mut doc)
                    .unwrap();
                }
                axml_query::Effect::Inserted { path, .. } => {
                    axml_query::UpdateAction::delete(axml_query::Locator::Node(path.clone())).apply(&mut doc).unwrap();
                }
            }
        }
        assert_eq!(doc.to_xml(), before);
    }
}
