//! The document repository an AXML peer hosts.

use axml_xml::Document;
use std::collections::BTreeMap;

/// Named AXML documents stored on one peer.
///
/// "AXML peers: Nodes where the AXML documents and services are hosted."
/// A `BTreeMap` keeps iteration deterministic for the simulator.
#[derive(Debug, Default, Clone)]
pub struct Repository {
    docs: BTreeMap<String, Document>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// Stores (or replaces) a document under `name`.
    pub fn put(&mut self, name: impl Into<String>, doc: Document) {
        self.docs.insert(name.into(), doc);
    }

    /// Parses and stores a document.
    pub fn put_xml(&mut self, name: impl Into<String>, xml: &str) -> Result<(), axml_xml::ParseError> {
        self.docs.insert(name.into(), Document::parse(xml)?);
        Ok(())
    }

    /// Immutable access to a document.
    pub fn get(&self, name: &str) -> Option<&Document> {
        self.docs.get(name)
    }

    /// Mutable access to a document.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Document> {
        self.docs.get_mut(name)
    }

    /// Removes a document.
    pub fn remove(&mut self, name: &str) -> Option<Document> {
        self.docs.remove(name)
    }

    /// Document names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.docs.keys().map(String::as_str).collect()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total node count across all documents (capacity metric).
    pub fn total_nodes(&self) -> usize {
        self.docs.values().map(Document::node_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let mut repo = Repository::new();
        assert!(repo.is_empty());
        repo.put_xml("atp", "<ATPList/>").unwrap();
        repo.put("other", Document::new("r"));
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.names(), vec!["atp", "other"]);
        assert_eq!(repo.get("atp").unwrap().to_xml(), "<ATPList/>");
        let atp = repo.get_mut("atp").unwrap();
        let root = atp.root();
        atp.set_attr(root, "date", "x").unwrap();
        assert!(repo.remove("atp").is_some());
        assert!(repo.get("atp").is_none());
        assert!(repo.remove("atp").is_none());
        assert_eq!(repo.total_nodes(), 1);
    }

    #[test]
    fn put_xml_rejects_bad_xml() {
        let mut repo = Repository::new();
        assert!(repo.put_xml("bad", "<a><b>").is_err());
        assert!(repo.is_empty());
    }

    #[test]
    fn replace_document() {
        let mut repo = Repository::new();
        repo.put_xml("d", "<a/>").unwrap();
        repo.put_xml("d", "<b/>").unwrap();
        assert_eq!(repo.get("d").unwrap().to_xml(), "<b/>");
        assert_eq!(repo.len(), 1);
    }
}
