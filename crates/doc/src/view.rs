//! Transparent query evaluation over AXML documents.
//!
//! Embedded `axml:sc` elements are **wrappers**: their previous invocation
//! results are logically part of the surrounding content. The paper's
//! query A (`Select p/citizenship, p/grandslamswon from p in
//! ATPList//player …`) selects `grandslamswon` nodes even though they
//! physically live *inside* the `axml:sc` element. A [`TransparentView`]
//! realizes that semantics: it is a copy of the document in which every
//! `axml:sc` element is elided — its control children (`axml:params`,
//! fault handlers) hidden and its result children hoisted into the
//! parent — together with a mapping back to the original nodes.

use crate::consts;
use axml_query::SelectQuery;
use axml_xml::{Document, NodeId, NodeKind};
use std::collections::HashMap;

/// A copy of the document with `axml:sc` wrappers elided, plus a mapping
/// from view nodes back to the original document's nodes.
#[derive(Debug)]
pub struct TransparentView {
    /// The elided copy.
    pub view: Document,
    back: HashMap<NodeId, NodeId>,
}

impl TransparentView {
    /// Builds the view of `doc`.
    pub fn build(doc: &Document) -> TransparentView {
        let root = doc.root();
        let root_name = doc.name(root).cloned().unwrap_or_else(|_| "view".into());
        let mut view = Document::new(root_name);
        let vroot = view.root();
        if let Ok(attrs) = doc.attrs(root) {
            for (n, v) in attrs {
                view.set_attr(vroot, n.clone(), v.clone()).expect("root is element");
            }
        }
        let mut tv = TransparentView { view, back: HashMap::new() };
        tv.back.insert(vroot, root);
        tv.copy_children(doc, root, vroot);
        tv
    }

    fn copy_children(&mut self, doc: &Document, orig: NodeId, vparent: NodeId) {
        let Ok(children) = doc.children(orig) else { return };
        for &child in children {
            match doc.kind(child) {
                Ok(NodeKind::Element { name, attrs }) => {
                    if consts::is_sc(name.prefix.as_deref(), &name.local) {
                        // Elide the wrapper: hoist its result children.
                        let Ok(sc_children) = doc.children(child) else { continue };
                        for &rc in sc_children {
                            let control = doc
                                .name(rc)
                                .map(|q| consts::is_control_child(q.prefix.as_deref(), &q.local))
                                .unwrap_or(false);
                            if !control {
                                self.copy_one(doc, rc, vparent);
                            }
                        }
                        continue;
                    }
                    let vchild = self.view.create_element_with_attrs(name.clone(), attrs.iter().cloned());
                    self.view.append_child(vparent, vchild).expect("parent is element");
                    self.back.insert(vchild, child);
                    self.copy_children(doc, child, vchild);
                }
                Ok(_) => {
                    self.copy_one(doc, child, vparent);
                }
                Err(_) => {}
            }
        }
    }

    fn copy_one(&mut self, doc: &Document, orig: NodeId, vparent: NodeId) {
        match doc.kind(orig) {
            Ok(NodeKind::Element { name, attrs }) => {
                if consts::is_sc(name.prefix.as_deref(), &name.local) {
                    // Nested wrapper in results: elide recursively.
                    let Ok(sc_children) = doc.children(orig) else { return };
                    for &rc in sc_children {
                        let control = doc
                            .name(rc)
                            .map(|q| consts::is_control_child(q.prefix.as_deref(), &q.local))
                            .unwrap_or(false);
                        if !control {
                            self.copy_one(doc, rc, vparent);
                        }
                    }
                    return;
                }
                let v = self.view.create_element_with_attrs(name.clone(), attrs.iter().cloned());
                self.view.append_child(vparent, v).expect("parent is element");
                self.back.insert(v, orig);
                self.copy_children(doc, orig, v);
            }
            Ok(NodeKind::Text(t)) => {
                let v = self.view.create_text(t.clone());
                self.view.append_child(vparent, v).expect("parent is element");
                self.back.insert(v, orig);
            }
            Ok(NodeKind::Cdata(t)) => {
                let v = self.view.create_cdata(t.clone());
                self.view.append_child(vparent, v).expect("parent is element");
                self.back.insert(v, orig);
            }
            Ok(NodeKind::Comment(_)) | Ok(NodeKind::Pi { .. }) | Err(_) => {}
        }
    }

    /// Maps a view node back to the original document's node.
    pub fn to_original(&self, view_node: NodeId) -> Option<NodeId> {
        self.back.get(&view_node).copied()
    }

    /// Evaluates a select query on the view, returning **original**
    /// document node ids.
    pub fn eval_select(&self, query: &SelectQuery) -> Result<Vec<NodeId>, axml_query::QueryError> {
        let hits = query.eval(&self.view)?;
        Ok(hits.into_iter().filter_map(|v| self.to_original(v)).collect())
    }

    /// One-shot transparent evaluation.
    pub fn eval(doc: &Document, query: &SelectQuery) -> Result<Vec<NodeId>, axml_query::QueryError> {
        TransparentView::build(doc).eval_select(query)
    }
}

/// Applies an update action with **transparent location**: `Select`/path
/// locators are evaluated through the AXML view (so they can target nodes
/// living inside `axml:sc` wrappers), then the action runs against the
/// pre-located structural addresses.
pub fn apply_update_transparent(
    doc: &mut axml_xml::Document,
    action: &axml_query::UpdateAction,
) -> Result<axml_query::UpdateReport, axml_query::QueryError> {
    use axml_query::{Locator, NodePath};
    let targets: Vec<NodeId> = match &action.location {
        Locator::Select(q) => TransparentView::eval(doc, q)?,
        Locator::Path(_) | Locator::Node(_) | Locator::Nodes(_) => action.location.locate(doc)?,
    };
    let paths: Vec<NodePath> = targets.iter().map(|t| NodePath::of(doc, *t)).collect::<Result<_, _>>()?;
    let located = axml_query::UpdateAction { location: Locator::Nodes(paths), ..action.clone() };
    located.apply(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ATP: &str = r#"<ATPList date="18042005">
        <player rank="1">
            <name><lastname>Federer</lastname></name>
            <citizenship>Swiss</citizenship>
            <axml:sc mode="replace" serviceNameSpace="getPoints" serviceURL="peer://ap2" methodName="getPoints">
                <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
                <points>475</points>
            </axml:sc>
            <axml:sc mode="merge" serviceNameSpace="g" serviceURL="peer://ap3" methodName="getGrandSlamsWonbyYear">
                <grandslamswon year="2003">A, W</grandslamswon>
                <grandslamswon year="2004">A, U</grandslamswon>
            </axml:sc>
        </player>
    </ATPList>"#;

    #[test]
    fn view_elides_wrappers() {
        let doc = Document::parse(ATP).unwrap();
        let tv = TransparentView::build(&doc);
        let xml = tv.view.to_xml();
        assert!(!xml.contains("axml:sc"), "{xml}");
        assert!(!xml.contains("axml:params"), "{xml}");
        assert!(xml.contains("<points>475</points>"), "{xml}");
        assert!(xml.contains("grandslamswon"), "{xml}");
        assert!(!xml.contains("Roger Federer"), "params are hidden: {xml}");
    }

    #[test]
    fn paper_query_b_sees_points_through_wrapper() {
        let doc = Document::parse(ATP).unwrap();
        let q = SelectQuery::parse(
            "Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer;",
        )
        .unwrap();
        let hits = TransparentView::eval(&doc, &q).unwrap();
        assert_eq!(hits.len(), 2);
        // The returned ids are in the ORIGINAL document.
        assert_eq!(doc.text_content(hits[1]).unwrap(), "475");
        let parent = doc.parent(hits[1]).unwrap().unwrap();
        assert!(doc.name(parent).unwrap().is(Some("axml"), "sc"), "physically inside the wrapper");
    }

    #[test]
    fn where_clause_sees_through_wrappers() {
        let doc = Document::parse(ATP).unwrap();
        let q = SelectQuery::parse("Select p/citizenship from p in ATPList//player where p/points = 475").unwrap();
        let hits = TransparentView::eval(&doc, &q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.text_content(hits[0]).unwrap(), "Swiss");
    }

    #[test]
    fn nested_wrapper_elision() {
        let src = r#"<r>
            <axml:sc methodName="outer" serviceURL="u" serviceNameSpace="o">
                <axml:sc methodName="inner" serviceURL="u" serviceNameSpace="i">
                    <got>deep</got>
                </axml:sc>
            </axml:sc>
        </r>"#;
        let doc = Document::parse(src).unwrap();
        let tv = TransparentView::build(&doc);
        assert_eq!(tv.view.to_xml(), "<r><got>deep</got></r>");
        let q = SelectQuery::parse("Select v/got from v in r").unwrap();
        let hits = tv.eval_select(&q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.text_content(hits[0]).unwrap(), "deep");
    }

    #[test]
    fn plain_documents_unchanged() {
        let doc = Document::parse(r#"<r a="1"><x>t</x><![CDATA[c]]></r>"#).unwrap();
        let tv = TransparentView::build(&doc);
        assert_eq!(tv.view.to_xml(), doc.to_xml());
    }

    #[test]
    fn comments_dropped_from_view() {
        let doc = Document::parse("<r><!-- hey --><x/></r>").unwrap();
        let tv = TransparentView::build(&doc);
        assert_eq!(tv.view.to_xml(), "<r><x/></r>");
    }

    #[test]
    fn mapping_covers_all_view_nodes() {
        let doc = Document::parse(ATP).unwrap();
        let tv = TransparentView::build(&doc);
        for v in tv.view.all_nodes() {
            let orig = tv.to_original(v).expect("every view node maps back");
            assert!(doc.contains(orig));
        }
    }
}
