//! Element and attribute names of the AXML vocabulary.

/// Namespace prefix of AXML control elements.
pub const AXML_PREFIX: &str = "axml";

/// The embedded service-call element, `axml:sc`.
pub const SC: &str = "sc";
/// Parameter list element, `axml:params`.
pub const PARAMS: &str = "params";
/// One parameter, `axml:param`.
pub const PARAM: &str = "param";
/// Literal parameter value, `axml:value`.
pub const VALUE: &str = "value";
/// Named fault handler, `axml:catch`.
pub const CATCH: &str = "catch";
/// Catch-all fault handler, `axml:catchAll`.
pub const CATCH_ALL: &str = "catchAll";
/// Retry construct inside a handler, `axml:retry`.
pub const RETRY: &str = "retry";

/// `mode` attribute (`replace` or `merge`).
pub const ATTR_MODE: &str = "mode";
/// `serviceNameSpace` attribute.
pub const ATTR_SERVICE_NS: &str = "serviceNameSpace";
/// `serviceURL` attribute (a peer address in the simulated fabric).
pub const ATTR_SERVICE_URL: &str = "serviceURL";
/// `methodName` attribute.
pub const ATTR_METHOD: &str = "methodName";
/// `frequency` attribute (periodic invocation interval, in simulated time
/// units).
pub const ATTR_FREQUENCY: &str = "frequency";
/// `lastInvoked` bookkeeping attribute maintained by the engine.
pub const ATTR_LAST_INVOKED: &str = "lastInvoked";
/// `name` attribute of `axml:param` and `faultName` of `axml:catch`.
pub const ATTR_NAME: &str = "name";
/// `faultName` attribute of `axml:catch`.
pub const ATTR_FAULT_NAME: &str = "faultName";
/// `times` attribute of `axml:retry`.
pub const ATTR_TIMES: &str = "times";
/// `wait` attribute of `axml:retry`.
pub const ATTR_WAIT: &str = "wait";

/// True if the name is one of the `axml:` control children of an `sc`
/// element (i.e. *not* part of the invocation results).
pub fn is_control_child(prefix: Option<&str>, local: &str) -> bool {
    prefix == Some(AXML_PREFIX) && matches!(local, PARAMS | CATCH | CATCH_ALL | RETRY)
}

/// True if the name is the service-call element itself.
pub fn is_sc(prefix: Option<&str>, local: &str) -> bool {
    prefix == Some(AXML_PREFIX) && local == SC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_child_classification() {
        assert!(is_control_child(Some("axml"), "params"));
        assert!(is_control_child(Some("axml"), "catch"));
        assert!(is_control_child(Some("axml"), "catchAll"));
        assert!(is_control_child(Some("axml"), "retry"));
        assert!(!is_control_child(Some("axml"), "sc"));
        assert!(!is_control_child(None, "params"));
        assert!(!is_control_child(Some("axml"), "value"));
    }

    #[test]
    fn sc_classification() {
        assert!(is_sc(Some("axml"), "sc"));
        assert!(!is_sc(None, "sc"));
        assert!(!is_sc(Some("axml"), "params"));
    }
}
