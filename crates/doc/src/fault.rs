//! Service faults.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fault raised while processing a service invocation.
///
/// Faults carry a *name* that fault handlers match on (`axml:catch
/// faultName="A"`), mirroring BPEL4WS fault handling as §3.2 prescribes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// Handler-matchable fault name (e.g. `ServiceUnavailable`).
    pub name: String,
    /// Human-readable detail.
    pub message: String,
}

impl Fault {
    /// Builds a fault.
    pub fn new(name: impl Into<String>, message: impl Into<String>) -> Fault {
        Fault { name: name.into(), message: message.into() }
    }

    /// The fault used when a peer cannot be reached.
    pub fn peer_unreachable(detail: impl Into<String>) -> Fault {
        Fault::new("PeerUnreachable", detail)
    }

    /// The fault used when a service name does not resolve.
    pub fn no_such_service(detail: impl Into<String>) -> Fault {
        Fault::new("NoSuchService", detail)
    }

    /// The fault used when a service's own processing fails.
    pub fn execution(detail: impl Into<String>) -> Fault {
        Fault::new("ExecutionFault", detail)
    }

    /// The fault injected by workloads to exercise recovery.
    pub fn injected(detail: impl Into<String>) -> Fault {
        Fault::new("InjectedFault", detail)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault {}: {}", self.name, self.message)
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        assert_eq!(Fault::peer_unreachable("ap5").name, "PeerUnreachable");
        assert_eq!(Fault::no_such_service("x").name, "NoSuchService");
        assert_eq!(Fault::execution("y").name, "ExecutionFault");
        assert_eq!(Fault::injected("z").name, "InjectedFault");
        let f = Fault::new("A", "boom");
        assert!(f.to_string().contains("fault A"));
        assert!(f.to_string().contains("boom"));
    }
}
