//! Embedded service calls (`axml:sc`) and their fault handlers.
//!
//! The paper's running example (§1/§3.1):
//!
//! ```xml
//! <axml:sc mode="replace" serviceNameSpace="getPoints"
//!          serviceURL="peer://ap2" methodName="getPoints">
//!   <axml:params>
//!     <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
//!   </axml:params>
//!   <points>475</points>              <!-- previous invocation results -->
//! </axml:sc>
//! ```
//!
//! and, with fault handlers (§3.2):
//!
//! ```xml
//! <axml:sc … methodName="getGrandSlamsWon">
//!   <axml:params>…</axml:params>
//!   <axml:catch faultName="A"><axml:retry times="3" wait="10"/></axml:catch>
//!   <axml:catchAll><axml:value>fallback</axml:value></axml:catchAll>
//! </axml:sc>
//! ```

use crate::consts;
use axml_xml::{Document, Fragment, NodeId, QName};
use serde::{Deserialize, Serialize};

/// Result mode of a service call (§1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScMode {
    /// "the previous results are replaced by the current invocation results".
    #[default]
    Replace,
    /// "the invocation results are appended as siblings of the previous
    /// invocation results".
    Merge,
}

impl ScMode {
    /// Parses the `mode` attribute (defaults to `replace`).
    pub fn parse(s: Option<&str>) -> ScMode {
        match s {
            Some("merge") => ScMode::Merge,
            _ => ScMode::Replace,
        }
    }

    /// The attribute value.
    pub fn as_str(&self) -> &'static str {
        match self {
            ScMode::Replace => "replace",
            ScMode::Merge => "merge",
        }
    }
}

/// The value of one `axml:param`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamValue {
    /// A literal `axml:value` text.
    Literal(String),
    /// An external value placeholder (`$year (external value)` in the
    /// paper) to be supplied by the caller at invocation time.
    External(String),
    /// A nested service call (**local nesting**: "the service call
    /// parameters may themselves be defined as service calls").
    Call(Box<ServiceCall>),
    /// Literal XML content.
    Xml(Vec<Fragment>),
}

/// One parameter of a service call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter value.
    pub value: ParamValue,
}

/// What a fault handler does when it matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandlerAction {
    /// `axml:retry times=".." wait=".."`, optionally carrying an
    /// alternative `axml:sc` to retry against a **replica peer** ("the
    /// optional `<axml:sc …>` allows retrying the invocation using a
    /// replicated peer").
    Retry {
        /// Maximum retry attempts.
        times: u32,
        /// Wait between attempts, in simulated time units.
        wait: u64,
        /// Alternative call (replica peer), if any.
        alternative: Option<Box<ServiceCall>>,
    },
    /// Substitute a default result and continue (forward recovery with
    /// application-provided data).
    Substitute(Vec<Fragment>),
    /// Explicitly propagate the abort to the parent (backward recovery).
    Propagate,
}

/// A fault handler attached to a service call (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultHandler {
    /// `Some(name)` for `axml:catch faultName="name"`, `None` for
    /// `axml:catchAll`.
    pub fault_name: Option<String>,
    /// The recovery action.
    pub action: HandlerAction,
}

impl FaultHandler {
    /// True if this handler matches a fault with the given name.
    pub fn matches(&self, fault_name: &str) -> bool {
        match &self.fault_name {
            None => true,
            Some(n) => n == fault_name,
        }
    }
}

/// A parsed embedded service call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceCall {
    /// The `axml:sc` element in the host document (`None` for calls built
    /// programmatically or nested inside parameters).
    pub node: Option<NodeId>,
    /// Result mode.
    pub mode: ScMode,
    /// `serviceNameSpace` attribute.
    pub service_ns: String,
    /// `serviceURL` — in this reproduction, the address of the hosting
    /// peer in the simulated fabric (e.g. `peer://ap2`).
    pub service_url: String,
    /// `methodName` — the service to invoke.
    pub method: String,
    /// Periodic invocation interval (simulated time units), if any.
    pub frequency: Option<u64>,
    /// Parameters.
    pub params: Vec<Param>,
    /// Fault handlers, in document order (first match wins; `catchAll`
    /// placed last by convention).
    pub handlers: Vec<FaultHandler>,
}

impl ServiceCall {
    /// Parses the `axml:sc` element at `node`.
    pub fn parse(doc: &Document, node: NodeId) -> Option<ServiceCall> {
        let name = doc.name(node).ok()?;
        if !consts::is_sc(name.prefix.as_deref(), &name.local) {
            return None;
        }
        let mut call = ServiceCall {
            node: Some(node),
            mode: ScMode::parse(doc.attr(node, consts::ATTR_MODE)),
            service_ns: doc.attr(node, consts::ATTR_SERVICE_NS).unwrap_or_default().to_string(),
            service_url: doc.attr(node, consts::ATTR_SERVICE_URL).unwrap_or_default().to_string(),
            method: doc.attr(node, consts::ATTR_METHOD).unwrap_or_default().to_string(),
            frequency: doc.attr(node, consts::ATTR_FREQUENCY).and_then(|f| f.parse().ok()),
            params: Vec::new(),
            handlers: Vec::new(),
        };
        for &child in doc.children(node).ok()? {
            let Ok(cname) = doc.name(child) else { continue };
            if !cname.has_prefix(consts::AXML_PREFIX) {
                continue; // previous results
            }
            match cname.local.as_str() {
                consts::PARAMS => {
                    for &p in doc.children(child).ok()? {
                        if let Some(param) = Self::parse_param(doc, p) {
                            call.params.push(param);
                        }
                    }
                }
                consts::CATCH => {
                    let fault_name = doc.attr(child, consts::ATTR_FAULT_NAME).map(str::to_string);
                    call.handlers.push(FaultHandler { fault_name, action: Self::parse_handler_action(doc, child) });
                }
                consts::CATCH_ALL => {
                    call.handlers
                        .push(FaultHandler { fault_name: None, action: Self::parse_handler_action(doc, child) });
                }
                _ => {}
            }
        }
        Some(call)
    }

    fn parse_param(doc: &Document, node: NodeId) -> Option<Param> {
        let name = doc.name(node).ok()?;
        if !name.is(Some(consts::AXML_PREFIX), consts::PARAM) {
            return None;
        }
        let pname = doc.attr(node, consts::ATTR_NAME).unwrap_or_default().to_string();
        // Value forms: a nested sc, an axml:value literal, or raw XML.
        let children = doc.children(node).ok()?;
        for &c in children {
            if let Ok(cname) = doc.name(c) {
                if consts::is_sc(cname.prefix.as_deref(), &cname.local) {
                    let nested = ServiceCall::parse(doc, c)?;
                    return Some(Param { name: pname, value: ParamValue::Call(Box::new(nested)) });
                }
                if cname.is(Some(consts::AXML_PREFIX), consts::VALUE) {
                    let text = doc.text_content(c).ok()?.trim().to_string();
                    if let Some(ext) = parse_external(&text) {
                        return Some(Param { name: pname, value: ParamValue::External(ext) });
                    }
                    return Some(Param { name: pname, value: ParamValue::Literal(text) });
                }
            }
        }
        // Raw XML value.
        let frags: Vec<Fragment> = children.iter().filter_map(|c| doc.extract_fragment(*c).ok()).collect();
        Some(Param { name: pname, value: ParamValue::Xml(frags) })
    }

    fn parse_handler_action(doc: &Document, handler: NodeId) -> HandlerAction {
        let Ok(children) = doc.children(handler) else { return HandlerAction::Propagate };
        for &c in children {
            if let Ok(cname) = doc.name(c) {
                if cname.is(Some(consts::AXML_PREFIX), consts::RETRY) {
                    let times = doc.attr(c, consts::ATTR_TIMES).and_then(|t| t.parse().ok()).unwrap_or(1);
                    let wait = doc.attr(c, consts::ATTR_WAIT).and_then(|w| w.parse().ok()).unwrap_or(0);
                    let alternative = doc
                        .children(c)
                        .ok()
                        .and_then(|cs| {
                            cs.iter()
                                .find(|n| {
                                    doc.name(**n).map(|q| consts::is_sc(q.prefix.as_deref(), &q.local)).unwrap_or(false)
                                })
                                .copied()
                        })
                        .and_then(|sc| ServiceCall::parse(doc, sc))
                        .map(Box::new);
                    return HandlerAction::Retry { times, wait, alternative };
                }
            }
        }
        // Non-retry handler bodies substitute their content as the result.
        let frags: Vec<Fragment> = children
            .iter()
            .filter_map(|c| doc.extract_fragment(*c).ok())
            .filter(|f| !matches!(f, Fragment::Comment(_)))
            .collect();
        if frags.is_empty() {
            HandlerAction::Propagate
        } else {
            HandlerAction::Substitute(frags)
        }
    }

    /// Scans `doc` for all embedded service calls, in document order.
    /// Calls nested inside parameters are *not* listed (they materialize
    /// as part of their parent call).
    pub fn scan(doc: &Document) -> Vec<ServiceCall> {
        let mut out = Vec::new();
        let mut stack = vec![doc.root()];
        while let Some(node) = stack.pop() {
            let is_sc = doc.name(node).map(|q| consts::is_sc(q.prefix.as_deref(), &q.local)).unwrap_or(false);
            if is_sc {
                if let Some(call) = ServiceCall::parse(doc, node) {
                    out.push(call);
                }
                // Results inside an sc can contain further sc's; those are
                // top-level calls in their own right (nested invocation
                // results), so keep scanning result children but skip the
                // control children (params may hold sc's, handled above).
                if let Ok(children) = doc.children(node) {
                    for &c in children.iter().rev() {
                        let control = doc
                            .name(c)
                            .map(|q| consts::is_control_child(q.prefix.as_deref(), &q.local))
                            .unwrap_or(false);
                        if !control {
                            stack.push(c);
                        }
                    }
                }
            } else if let Ok(children) = doc.children(node) {
                stack.extend(children.iter().rev());
            }
        }
        // Document order (stack-based scan already visits pre-order, and we
        // pushed children reversed).
        out
    }

    /// The result children of this call's element: everything that is not
    /// an `axml:` control child. These are "the previous invocation
    /// results".
    pub fn result_children(&self, doc: &Document) -> Vec<NodeId> {
        let Some(node) = self.node else { return Vec::new() };
        let Ok(children) = doc.children(node) else { return Vec::new() };
        children
            .iter()
            .copied()
            .filter(|c| !doc.name(*c).map(|q| consts::is_control_child(q.prefix.as_deref(), &q.local)).unwrap_or(false))
            .collect()
    }

    /// Element names of the current result children (relevance hints).
    pub fn result_names(&self, doc: &Document) -> Vec<QName> {
        self.result_children(doc).into_iter().filter_map(|c| doc.name(c).ok().cloned()).collect()
    }

    /// Builds the `axml:sc` fragment form of this call (used when a
    /// service returns *another service call* as its result, and by
    /// generators).
    pub fn to_fragment(&self) -> Fragment {
        let mut sc = Fragment::elem(QName::prefixed(consts::AXML_PREFIX, consts::SC))
            .with_attr(consts::ATTR_MODE, self.mode.as_str())
            .with_attr(consts::ATTR_SERVICE_NS, self.service_ns.clone())
            .with_attr(consts::ATTR_SERVICE_URL, self.service_url.clone())
            .with_attr(consts::ATTR_METHOD, self.method.clone());
        if let Some(f) = self.frequency {
            sc = sc.with_attr(consts::ATTR_FREQUENCY, f.to_string());
        }
        if !self.params.is_empty() {
            let mut params = Fragment::elem(QName::prefixed(consts::AXML_PREFIX, consts::PARAMS));
            for p in &self.params {
                let mut pe = Fragment::elem(QName::prefixed(consts::AXML_PREFIX, consts::PARAM))
                    .with_attr(consts::ATTR_NAME, p.name.clone());
                match &p.value {
                    ParamValue::Literal(v) => {
                        pe = pe.with_child(
                            Fragment::elem(QName::prefixed(consts::AXML_PREFIX, consts::VALUE)).with_text(v.clone()),
                        );
                    }
                    ParamValue::External(v) => {
                        pe = pe.with_child(
                            Fragment::elem(QName::prefixed(consts::AXML_PREFIX, consts::VALUE))
                                .with_text(format!("${v} (external value)")),
                        );
                    }
                    ParamValue::Call(c) => {
                        pe = pe.with_child(c.to_fragment());
                    }
                    ParamValue::Xml(frags) => {
                        for f in frags {
                            pe = pe.with_child(f.clone());
                        }
                    }
                }
                params = params.with_child(pe);
            }
            sc = sc.with_child(params);
        }
        for h in &self.handlers {
            let name = match &h.fault_name {
                Some(_) => consts::CATCH,
                None => consts::CATCH_ALL,
            };
            let mut he = Fragment::elem(QName::prefixed(consts::AXML_PREFIX, name));
            if let Some(fname) = &h.fault_name {
                he = he.with_attr(consts::ATTR_FAULT_NAME, fname.clone());
            }
            match &h.action {
                HandlerAction::Retry { times, wait, alternative } => {
                    let mut re = Fragment::elem(QName::prefixed(consts::AXML_PREFIX, consts::RETRY))
                        .with_attr(consts::ATTR_TIMES, times.to_string())
                        .with_attr(consts::ATTR_WAIT, wait.to_string());
                    if let Some(alt) = alternative {
                        re = re.with_child(alt.to_fragment());
                    }
                    he = he.with_child(re);
                }
                HandlerAction::Substitute(frags) => {
                    for f in frags {
                        he = he.with_child(f.clone());
                    }
                }
                HandlerAction::Propagate => {}
            }
            sc = sc.with_child(he);
        }
        sc
    }

    /// Builds a call programmatically.
    pub fn build(service_url: impl Into<String>, method: impl Into<String>, mode: ScMode) -> ServiceCall {
        let method = method.into();
        ServiceCall {
            node: None,
            mode,
            service_ns: method.clone(),
            service_url: service_url.into(),
            method,
            frequency: None,
            params: Vec::new(),
            handlers: Vec::new(),
        }
    }

    /// Builder: adds a literal parameter.
    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<String>) -> ServiceCall {
        self.params.push(Param { name: name.into(), value: ParamValue::Literal(value.into()) });
        self
    }

    /// Builder: adds a nested-call parameter.
    pub fn with_call_param(mut self, name: impl Into<String>, call: ServiceCall) -> ServiceCall {
        self.params.push(Param { name: name.into(), value: ParamValue::Call(Box::new(call)) });
        self
    }

    /// Builder: adds a fault handler.
    pub fn with_handler(mut self, handler: FaultHandler) -> ServiceCall {
        self.handlers.push(handler);
        self
    }

    /// Finds the first handler matching a fault name.
    pub fn handler_for(&self, fault_name: &str) -> Option<&FaultHandler> {
        self.handlers.iter().find(|h| h.matches(fault_name))
    }
}

/// Recognizes the paper's `$year (external value)` convention.
fn parse_external(text: &str) -> Option<String> {
    let rest = text.strip_prefix('$')?;
    let (name, tail) = rest.split_once(|c: char| c.is_ascii_whitespace()).unwrap_or((rest, ""));
    if tail.trim() == "(external value)" || tail.is_empty() {
        Some(name.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::Document;

    const ATP: &str = r#"<ATPList date="18042005">
        <player rank="1">
            <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
            <citizenship>Swiss</citizenship>
            <axml:sc mode="replace" serviceNameSpace="getPoints" serviceURL="peer://ap2" methodName="getPoints">
                <axml:params>
                    <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
                </axml:params>
                <points>475</points>
            </axml:sc>
            <axml:sc mode="merge" serviceNameSpace="getGrandSlamsWonbyYear" serviceURL="peer://ap3" methodName="getGrandSlamsWonbyYear">
                <axml:params>
                    <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
                    <axml:param name="year"><axml:value>$year (external value)</axml:value></axml:param>
                </axml:params>
                <grandslamswon year="2003">A, W</grandslamswon>
                <grandslamswon year="2004">A, U</grandslamswon>
            </axml:sc>
        </player>
    </ATPList>"#;

    #[test]
    fn parses_paper_document() {
        let doc = Document::parse(ATP).unwrap();
        let calls = ServiceCall::scan(&doc);
        assert_eq!(calls.len(), 2);

        let points = &calls[0];
        assert_eq!(points.method, "getPoints");
        assert_eq!(points.mode, ScMode::Replace);
        assert_eq!(points.service_url, "peer://ap2");
        assert_eq!(points.params.len(), 1);
        assert_eq!(points.params[0].name, "name");
        assert_eq!(points.params[0].value, ParamValue::Literal("Roger Federer".into()));
        assert_eq!(points.result_names(&doc).iter().map(|q| q.local.as_str()).collect::<Vec<_>>(), vec!["points"]);

        let slams = &calls[1];
        assert_eq!(slams.mode, ScMode::Merge);
        assert_eq!(slams.params.len(), 2);
        assert_eq!(slams.params[1].value, ParamValue::External("year".into()));
        assert_eq!(slams.result_children(&doc).len(), 2);
    }

    #[test]
    fn scan_order_is_document_order() {
        let doc = Document::parse(ATP).unwrap();
        let calls = ServiceCall::scan(&doc);
        assert_eq!(calls[0].method, "getPoints");
        assert_eq!(calls[1].method, "getGrandSlamsWonbyYear");
    }

    #[test]
    fn fault_handlers_parse() {
        let src = r#"<r>
            <axml:sc methodName="getGrandSlamsWon" serviceURL="peer://ap2" serviceNameSpace="g">
                <axml:params>
                    <axml:param name="name"><axml:value>Rafael Nadal</axml:value></axml:param>
                </axml:params>
                <axml:catch faultName="A"><axml:retry times="3" wait="10"/></axml:catch>
                <axml:catch faultName="B"><fallback>none</fallback></axml:catch>
                <axml:catchAll/>
            </axml:sc>
        </r>"#;
        let doc = Document::parse(src).unwrap();
        let call = &ServiceCall::scan(&doc)[0];
        assert_eq!(call.handlers.len(), 3);
        assert_eq!(
            call.handlers[0],
            FaultHandler {
                fault_name: Some("A".into()),
                action: HandlerAction::Retry { times: 3, wait: 10, alternative: None }
            }
        );
        assert!(matches!(&call.handlers[1].action, HandlerAction::Substitute(f) if f.len() == 1));
        assert_eq!(call.handlers[2], FaultHandler { fault_name: None, action: HandlerAction::Propagate });
        // Matching: named first, then catchAll.
        assert_eq!(call.handler_for("A").unwrap().fault_name.as_deref(), Some("A"));
        assert_eq!(call.handler_for("B").unwrap().fault_name.as_deref(), Some("B"));
        assert!(call.handler_for("C").unwrap().fault_name.is_none());
    }

    #[test]
    fn retry_with_replica_alternative() {
        let src = r#"<r>
            <axml:sc methodName="m" serviceURL="peer://ap2" serviceNameSpace="m">
                <axml:catchAll>
                    <axml:retry times="2" wait="5">
                        <axml:sc methodName="m" serviceURL="peer://replica" serviceNameSpace="m"/>
                    </axml:retry>
                </axml:catchAll>
            </axml:sc>
        </r>"#;
        let doc = Document::parse(src).unwrap();
        let call = &ServiceCall::scan(&doc)[0];
        let HandlerAction::Retry { times, wait, alternative } = &call.handlers[0].action else { panic!() };
        assert_eq!((*times, *wait), (2, 5));
        assert_eq!(alternative.as_ref().unwrap().service_url, "peer://replica");
    }

    #[test]
    fn nested_param_call() {
        let src = r#"<r>
            <axml:sc methodName="outer" serviceURL="peer://a" serviceNameSpace="o">
                <axml:params>
                    <axml:param name="in">
                        <axml:sc methodName="inner" serviceURL="peer://b" serviceNameSpace="i"/>
                    </axml:param>
                </axml:params>
            </axml:sc>
        </r>"#;
        let doc = Document::parse(src).unwrap();
        let calls = ServiceCall::scan(&doc);
        assert_eq!(calls.len(), 1, "param-nested calls are not top-level");
        let ParamValue::Call(inner) = &calls[0].params[0].value else { panic!() };
        assert_eq!(inner.method, "inner");
    }

    #[test]
    fn sc_inside_results_is_scanned() {
        // A previous invocation returned another service call.
        let src = r#"<r>
            <axml:sc methodName="outer" serviceURL="peer://a" serviceNameSpace="o">
                <axml:sc methodName="returned" serviceURL="peer://b" serviceNameSpace="r"/>
            </axml:sc>
        </r>"#;
        let doc = Document::parse(src).unwrap();
        let calls = ServiceCall::scan(&doc);
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].method, "outer");
        assert_eq!(calls[1].method, "returned");
    }

    #[test]
    fn frequency_attribute() {
        let src = r#"<r><axml:sc methodName="feed" serviceURL="peer://a" serviceNameSpace="f" frequency="50"/></r>"#;
        let doc = Document::parse(src).unwrap();
        assert_eq!(ServiceCall::scan(&doc)[0].frequency, Some(50));
    }

    #[test]
    fn to_fragment_roundtrip() {
        let call = ServiceCall::build("peer://ap2", "getPoints", ScMode::Replace)
            .with_param("name", "Roger Federer")
            .with_handler(FaultHandler {
                fault_name: Some("A".into()),
                action: HandlerAction::Retry { times: 3, wait: 10, alternative: None },
            });
        let frag = call.to_fragment();
        let mut doc = Document::new("r");
        let root = doc.root();
        let node = doc.append_fragment(root, &frag).unwrap();
        let parsed = ServiceCall::parse(&doc, node).unwrap();
        assert_eq!(parsed.method, call.method);
        assert_eq!(parsed.mode, call.mode);
        assert_eq!(parsed.params, call.params);
        assert_eq!(parsed.handlers, call.handlers);
    }

    #[test]
    fn external_param_roundtrip() {
        let mut call = ServiceCall::build("peer://x", "m", ScMode::Merge);
        call.params.push(Param { name: "year".into(), value: ParamValue::External("year".into()) });
        let frag = call.to_fragment();
        let mut doc = Document::new("r");
        let root = doc.root();
        let node = doc.append_fragment(root, &frag).unwrap();
        let parsed = ServiceCall::parse(&doc, node).unwrap();
        assert_eq!(parsed.params[0].value, ParamValue::External("year".into()));
    }

    #[test]
    fn non_sc_node_yields_none() {
        let doc = Document::parse("<r><a/></r>").unwrap();
        let a = doc.first_child_element(doc.root(), "a").unwrap();
        assert!(ServiceCall::parse(&doc, a).is_none());
    }

    #[test]
    fn mode_parse_defaults() {
        assert_eq!(ScMode::parse(None), ScMode::Replace);
        assert_eq!(ScMode::parse(Some("merge")), ScMode::Merge);
        assert_eq!(ScMode::parse(Some("replace")), ScMode::Replace);
        assert_eq!(ScMode::parse(Some("bogus")), ScMode::Replace);
    }
}
