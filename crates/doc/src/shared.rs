//! Thread-safe repository sharing.
//!
//! "Concurrent (simultaneous) access: the number of users accessing the
//! system simultaneously can be very high." (§1) The distributed protocol
//! itself runs in the deterministic simulator, but an AXML peer also
//! serves *local* users concurrently: many readers evaluating queries
//! plus service executions mutating documents. [`SharedRepository`] wraps
//! a [`Repository`] in a `parking_lot::RwLock` so query evaluation
//! parallelizes while updates serialize, with convenience closures that
//! keep lock scopes tight.

use crate::fault::Fault;
use crate::repo::Repository;
use crate::view::TransparentView;
use axml_query::SelectQuery;
use axml_xml::Fragment;
use parking_lot::RwLock;
use std::sync::Arc;

/// A cloneable, thread-safe handle to a peer's repository.
#[derive(Debug, Clone, Default)]
pub struct SharedRepository {
    inner: Arc<RwLock<Repository>>,
}

impl SharedRepository {
    /// Wraps a repository.
    pub fn new(repo: Repository) -> SharedRepository {
        SharedRepository { inner: Arc::new(RwLock::new(repo)) }
    }

    /// Runs a closure with shared (read) access.
    pub fn read<T>(&self, f: impl FnOnce(&Repository) -> T) -> T {
        f(&self.inner.read())
    }

    /// Runs a closure with exclusive (write) access.
    pub fn write<T>(&self, f: impl FnOnce(&mut Repository) -> T) -> T {
        f(&mut self.inner.write())
    }

    /// Evaluates a select query transparently over a named document,
    /// returning the selected subtrees as owned fragments (ids don't
    /// escape the lock).
    pub fn query(&self, doc: &str, query: &SelectQuery) -> Result<Vec<Fragment>, Fault> {
        self.read(|repo| {
            let document = repo.get(doc).ok_or_else(|| Fault::execution(format!("no document {doc}")))?;
            let hits =
                TransparentView::eval(document, query).map_err(|e| Fault::execution(format!("query failed: {e}")))?;
            Ok(hits.into_iter().filter_map(|n| document.extract_fragment(n).ok()).collect())
        })
    }

    /// Number of concurrent handles (diagnostics).
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::{Locator, UpdateAction};
    use std::thread;

    fn shared() -> SharedRepository {
        let mut repo = Repository::new();
        repo.put_xml("atp", "<ATPList><player><points>475</points></player></ATPList>").unwrap();
        SharedRepository::new(repo)
    }

    #[test]
    fn read_write_closures() {
        let s = shared();
        assert_eq!(s.read(|r| r.len()), 1);
        s.write(|r| r.put_xml("d2", "<x/>").unwrap());
        assert_eq!(s.read(|r| r.len()), 2);
    }

    #[test]
    fn query_returns_owned_fragments() {
        let s = shared();
        let q = SelectQuery::parse("Select p/points from p in ATPList//player").unwrap();
        let frags = s.query("atp", &q).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].to_xml(), "<points>475</points>");
        assert!(s.query("missing", &q).is_err());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let s = shared();
        let q = SelectQuery::parse("Select p/points from p in ATPList//player").unwrap();
        let mut handles = Vec::new();
        // 4 reader threads × many queries, 2 writer threads bumping points.
        for _ in 0..4 {
            let s = s.clone();
            let q = q.clone();
            handles.push(thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..200 {
                    let frags = s.query("atp", &q).unwrap();
                    assert_eq!(frags.len(), 1, "readers always see a consistent document");
                    seen += frags.len();
                }
                seen
            }));
        }
        for w in 0..2 {
            let s = s.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    let action = UpdateAction::replace(
                        Locator::parse("ATPList//points").unwrap(),
                        vec![Fragment::elem_text("points", format!("{}", 500 + w * 1000 + i))],
                    );
                    s.write(|repo| {
                        let doc = repo.get_mut("atp").unwrap();
                        crate::view::apply_update_transparent(doc, &action).unwrap();
                    });
                }
                100
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 4 * 200 + 2 * 100);
        // Final state: exactly one points element, with a writer's value.
        let frags = s.query("atp", &q).unwrap();
        assert_eq!(frags.len(), 1);
        let v: i64 = frags[0].text_content().parse().unwrap();
        assert!((500..2600).contains(&v), "{v}");
    }

    #[test]
    fn handles_counted() {
        let s = shared();
        assert_eq!(s.handles(), 1);
        let s2 = s.clone();
        assert_eq!(s.handles(), 2);
        drop(s2);
        assert_eq!(s.handles(), 1);
    }
}
