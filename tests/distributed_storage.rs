//! Distributed storage of document fragments (§1).
//!
//! "In case of distributed storage, if a query Q on peer AP1 is interested
//! in part of an AXML document stored on peer AP2 then there are two
//! options: a) the query Q is decomposed and the relevant sub-query sent
//! to the peer AP2 for evaluation, or b) the required fragment of the
//! AXML document is copied to the peer AP1 and the query Q evaluated
//! locally (on AP1). Both the above options require invoking a service on
//! the remote peer and as such are similar in functionality to [remote
//! invocation]."
//!
//! These tests realize both options as AXML services — exactly the
//! reduction the paper describes — and check that the transactional
//! machinery (logging, compensation) covers them.

use axml::core::peer::WsdlCatalog;
use axml::prelude::*;

/// AP2 hosts the `players` fragment of a logically-distributed ranking
/// document; AP1 holds the head plus an embedded call fetching it.
fn fabric(option_a: bool) -> Sim<TxnMsg, AxmlPeer> {
    let mut wsdl = WsdlCatalog::default();
    // WSDL hints list the full result vocabulary (the schema of the
    // fragment), not just the top-level element — that is what lets lazy
    // relevance see that a query on `citizenship` needs this call.
    wsdl.publish("getFragment", &["player", "name", "lastname", "citizenship"]);
    wsdl.publish("subQuery", &["citizenship"]);
    let mut peers = Vec::new();
    for id in 0..3u32 {
        let mut peer = AxmlPeer::new(PeerId(id), PeerConfig::default());
        peer.wsdl = wsdl.clone();
        peers.push(peer);
    }
    // AP2: the remote fragment, exposed two ways.
    peers[2]
        .repo
        .put_xml(
            "fragment",
            r#"<players>
                <player rank="1"><name><lastname>Federer</lastname></name><citizenship>Swiss</citizenship></player>
                <player rank="2"><name><lastname>Nadal</lastname></name><citizenship>Spanish</citizenship></player>
            </players>"#,
        )
        .unwrap();
    // Option (b): copy the fragment wholesale.
    peers[2].registry.register(
        ServiceDef::query("getFragment", "fragment", SelectQuery::parse("Select p from p in players//player").unwrap())
            .with_results(&["player"]),
    );
    // Option (a): evaluate the sub-query remotely, ship only results.
    peers[2].registry.register(
        ServiceDef::query(
            "subQuery",
            "fragment",
            SelectQuery::parse("Select p/citizenship from p in players//player where p/name/lastname = Federer")
                .unwrap(),
        )
        .with_results(&["citizenship"]),
    );
    // AP1: the document head, embedding whichever option we exercise.
    let method = if option_a { "subQuery" } else { "getFragment" };
    peers[1]
        .repo
        .put_xml(
            "head",
            &format!(
                r#"<ATPList date="18042005">
                    <axml:sc mode="replace" serviceNameSpace="dist" serviceURL="peer://ap2" methodName="{method}"/>
                </ATPList>"#
            ),
        )
        .unwrap();
    let local_query = if option_a {
        // The remote side already filtered; locally we just read the results.
        "Select v//citizenship from v in ATPList"
    } else {
        // Fragment copied here; the *whole* query runs locally on AP1.
        "Select v//citizenship from v in ATPList where v//lastname = Federer"
    };
    peers[1].registry.register(
        ServiceDef::query("Q", "head", SelectQuery::parse(local_query).unwrap()).with_results(&["citizenship"]),
    );
    let mut sim = Sim::new(SimConfig::default(), peers);
    sim.actor_mut(PeerId(1)).auto_submit = Some(("Q".into(), vec![]));
    sim.schedule_timer(0, PeerId(1), 0);
    sim
}

#[test]
fn option_b_fragment_copied_and_queried_locally() {
    let mut sim = fabric(false);
    sim.run();
    let origin = sim.actor(PeerId(1));
    let outcome = origin.outcomes.first().expect("resolved");
    assert!(outcome.committed);
    let items = &origin.results[&outcome.txn];
    let text: String = items.iter().map(|f| f.to_xml()).collect();
    assert!(text.contains("<citizenship>Swiss</citizenship>"), "{text}");
    // The fragment (both players) was materialized into AP1's head.
    let head = origin.repo.get("head").unwrap().to_xml();
    assert!(head.contains("Nadal"), "whole fragment copied: {head}");
}

#[test]
fn option_a_subquery_ships_only_results() {
    let mut sim = fabric(true);
    sim.run();
    let origin = sim.actor(PeerId(1));
    let outcome = origin.outcomes.first().expect("resolved");
    assert!(outcome.committed);
    let items = &origin.results[&outcome.txn];
    let text: String = items.iter().map(|f| f.to_xml()).collect();
    assert!(text.contains("<citizenship>Swiss</citizenship>"), "{text}");
    // Only the sub-query *results* traveled — the rest of the fragment
    // never reached AP1.
    let head = origin.repo.get("head").unwrap().to_xml();
    assert!(!head.contains("Nadal"), "no wholesale copy under option (a): {head}");
    assert!(!head.contains("Spanish"), "{head}");
}

#[test]
fn aborting_undoes_the_fragment_copy() {
    // Same as option (b) but a second embedded call faults: the copied
    // fragment is compensated away with everything else.
    let mut sim = fabric(false);
    // Break the transaction by injecting a fault into AP1's own service
    // *after* the copy happens: register a faulting second call target.
    let head = r#"<ATPList date="18042005">
        <axml:sc mode="replace" serviceNameSpace="dist" serviceURL="peer://ap2" methodName="getFragment"/>
        <axml:sc mode="replace" serviceNameSpace="dist" serviceURL="peer://ap2" methodName="boom"/>
    </ATPList>"#;
    {
        let ap1 = sim.actor_mut(PeerId(1));
        ap1.repo.put_xml("head", head).unwrap();
        ap1.wsdl.publish("boom", &["citizenship"]);
        ap1.config.use_alternative_providers = false;
    }
    {
        let ap2 = sim.actor_mut(PeerId(2));
        let mut boom = ServiceDef::function("boom", |_| Ok(vec![]));
        boom.injected_fault = Some(Fault::injected("remote side down"));
        ap2.registry.register(boom);
    }
    let baseline = sim.actor(PeerId(1)).repo.get("head").unwrap().to_xml();
    sim.run();
    let origin = sim.actor(PeerId(1));
    let outcome = origin.outcomes.first().expect("resolved");
    assert!(!outcome.committed);
    assert_eq!(origin.repo.get("head").unwrap().to_xml(), baseline, "the copied fragment was compensated away");
}
