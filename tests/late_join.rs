//! Peers *joining* the system (§1: "the set of peers … keeps changing
//! with peers joining and leaving the system arbitrarily").
//!
//! A joining peer is modeled as a pre-provisioned replica that starts
//! disconnected and comes online mid-run. These tests check that the
//! recovery protocol picks a replica up only once it has actually joined.

use axml::prelude::*;

/// Fig. 1 with a fault at AP5 and a replica of AP5 that joins at `join_at`.
fn run_with_join(join_at: Option<u64>) -> (bool, bool) {
    let (builder, replica) = ScenarioBuilder::fig1().fault_at(5).with_replica(5);
    let mut builder = builder;
    // The replica starts offline; it "joins" by reconnecting.
    builder = builder.disconnect(0, replica);
    let mut scenario = builder.build();
    if let Some(at) = join_at {
        scenario.sim.schedule_reconnect(at, PeerId(replica));
    }
    let report = scenario.run();
    let committed = report.outcome.map(|o| o.committed).unwrap_or(false);
    (committed, report.atomic)
}

#[test]
fn replica_joining_before_the_fault_enables_forward_recovery() {
    // AP5's fault fires around t≈30; the replica joins at t=5, well in
    // time to serve the redo.
    let (committed, atomic) = run_with_join(Some(5));
    assert!(committed, "the joined replica served the redo");
    assert!(atomic);
}

#[test]
fn replica_that_never_joins_cannot_help() {
    let (committed, atomic) = run_with_join(None);
    assert!(!committed, "no reachable alternative provider: backward recovery");
    assert!(atomic, "and the abort is fully compensated");
}

#[test]
fn join_after_recovery_window_is_too_late() {
    // Joining long after the transaction aborted changes nothing; the
    // system stays quiescent and consistent.
    let (committed, atomic) = run_with_join(Some(50_000));
    assert!(!committed);
    assert!(atomic);
}

#[test]
fn offline_alternative_is_skipped_then_fault_handled_by_substitute() {
    // The directory lists a (still offline) replica, but the sc also has a
    // substitution handler: the reissue to the offline replica fails
    // synchronously and the handler absorbs the fault — layered forward
    // recovery.
    let (builder, replica) = ScenarioBuilder::fig1().fault_at(5).substitute_handler(3, 5, None).with_replica(5);
    let mut scenario = builder.disconnect(0, replica).build();
    let report = scenario.run();
    assert!(report.outcome.unwrap().committed, "the substitute value saved the day");
    assert!(report.atomic);
    let ap3 = &report.stats[&PeerId(3)];
    assert_eq!(ap3.substitutions, 1);
}
