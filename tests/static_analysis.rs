//! Acceptance tests for the static verifier: the shipped figures audit
//! clean, the deliberately-broken fixture trips at least three distinct
//! rule ids, and the `axml-analyze` binary turns findings into a nonzero
//! exit code.

use axml::core::scenarios::ScenarioBuilder;
use axml_analysis::{analyze_all, analyze_broken_fixture};
use std::collections::BTreeSet;
use std::path::PathBuf;

#[test]
fn shipped_figures_have_zero_findings() {
    for (name, builder) in [("fig1", ScenarioBuilder::fig1()), ("fig2", ScenarioBuilder::fig2())] {
        let report = analyze_all(&builder);
        assert!(report.is_clean(), "{name} must audit clean:\n{}", report.render_text());
    }
}

#[test]
fn broken_fixture_trips_at_least_three_distinct_rules() {
    let report = analyze_broken_fixture();
    assert!(!report.is_clean());
    let ids: BTreeSet<&str> = report.rule_ids().into_iter().collect();
    assert!(ids.len() >= 3, "want ≥3 distinct rule ids, got {ids:?}");
    // One rule from each pillar: compensation, well-formedness, chaining.
    assert!(ids.iter().any(|r| r.starts_with('C')), "{ids:?}");
    assert!(ids.iter().any(|r| r.starts_with('W')), "{ids:?}");
    assert!(ids.iter().any(|r| r.starts_with('L')), "{ids:?}");
}

/// The workspace build drops the `axml-analyze` binary next to the test
/// executables' parent directory.
fn analyzer_binary() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // debug/ (or release/)
    p.push(format!("axml-analyze{}", std::env::consts::EXE_SUFFIX));
    p
}

#[test]
fn binary_exit_codes_reflect_findings() {
    let bin = analyzer_binary();
    if !bin.exists() {
        // Built only when the analysis crate is part of the build (it is
        // a default workspace member, so `cargo test` at the root always
        // has it; `cargo test -p axml` alone may not).
        eprintln!("skipping: {} not built", bin.display());
        return;
    }
    let clean = std::process::Command::new(&bin).arg("--all-scenarios").output().expect("analyzer runs");
    assert!(clean.status.success(), "clean scenarios must exit 0");
    let broken = std::process::Command::new(&bin).arg("--demo-broken").output().expect("analyzer runs");
    assert_eq!(broken.status.code(), Some(1), "findings must exit 1");
    let text = String::from_utf8_lossy(&broken.stdout);
    let distinct: BTreeSet<&str> = [
        "C001", "C002", "C003", "C004", "C005", "W001", "W002", "W003", "W004", "W005", "L001", "L002", "L003", "L005",
    ]
    .into_iter()
    .filter(|r| text.contains(&format!("[{r}]")))
    .collect();
    assert!(distinct.len() >= 3, "≥3 distinct rule ids in the demo output, got {distinct:?}:\n{text}");
}
