//! Durability integration: journal a *live* peer's context mid-run,
//! crash it, and recover the in-doubt transaction by presumed abort.

use axml::core::durability::{decode, encode, journal_of, recover_in_doubt, replay};
use axml::prelude::*;

/// Freeze Fig. 1 mid-flight, snapshot AP3's journal + repository (what a
/// real peer would have on disk), and run crash recovery on the copy.
#[test]
fn mid_flight_crash_recovers_by_presumed_abort() {
    let mut builder = ScenarioBuilder::fig1();
    // Keep AP3's serving alive long enough to freeze mid-flight: its own
    // body runs late, but its materialization effects land early.
    builder.durations.insert(3, 500);
    let mut scenario = builder.build();
    // Run long enough for AP3 to have materialized S4/S5 results (local
    // effects in its log) but not completed S3.
    scenario.sim.run_until(60);
    let ap3 = scenario.sim.actor(PeerId(3));
    let txns = ap3.known_txns();
    assert_eq!(txns.len(), 1);
    let tc = ap3.context(txns[0]).expect("active context");
    assert!(!tc.is_terminal(), "mid-flight");
    assert!(!tc.local_effects().is_empty(), "materialization effects logged");

    // What survives the crash: the journal and the repository.
    let journal_text = encode(&journal_of(tc));
    let mut disk_repo = ap3.repo.clone();
    let dirty = disk_repo.get("d3").unwrap().to_xml();
    assert!(dirty.contains("done-"), "partial effects visible on disk: {dirty}");

    // 💥 reboot: replay + presumed abort.
    let mut contexts = replay(&decode(&journal_text).unwrap()).unwrap();
    let outcome = recover_in_doubt(&mut contexts, &mut disk_repo, 999);
    assert_eq!(outcome.presumed_aborted, txns);
    let recovered = disk_repo.get("d3").unwrap().to_xml();
    assert!(recovered.contains("initial-3"), "{recovered}");
    assert!(!recovered.contains("done-"), "all partial effects rolled back: {recovered}");
}

/// A committed context's journal replays to Committed and recovery leaves
/// its effects durable.
#[test]
fn committed_journal_survives_crash_untouched() {
    let mut scenario = ScenarioBuilder::fig1().build();
    let report = scenario.run();
    assert!(report.outcome.unwrap().committed);
    let ap3 = scenario.sim.actor(PeerId(3));
    let txn = ap3.known_txns()[0];
    let tc = ap3.context(txn).unwrap();
    assert_eq!(tc.state, TxnState::Committed);

    let journal_text = encode(&journal_of(tc));
    let mut disk_repo = ap3.repo.clone();
    let committed_doc = disk_repo.get("d3").unwrap().to_xml();

    let mut contexts = replay(&decode(&journal_text).unwrap()).unwrap();
    assert_eq!(contexts[0].state, TxnState::Committed);
    let outcome = recover_in_doubt(&mut contexts, &mut disk_repo, 999);
    assert!(outcome.presumed_aborted.is_empty());
    assert_eq!(disk_repo.get("d3").unwrap().to_xml(), committed_doc, "committed effects are durable");
}

/// Journals of every participant after a full aborted run replay to
/// Aborted contexts with nothing left to do.
#[test]
fn aborted_run_journals_are_terminal_everywhere() {
    let mut cfg = PeerConfig::default();
    cfg.use_alternative_providers = false;
    let mut scenario = ScenarioBuilder::fig1().fault_at(5).config(cfg).build();
    let report = scenario.run();
    assert!(!report.outcome.unwrap().committed);
    for p in [1u32, 2, 3, 4, 5, 6] {
        let actor = scenario.sim.actor(PeerId(p));
        for txn in actor.known_txns() {
            let tc = actor.context(txn).unwrap();
            let journal = journal_of(tc);
            let replayed = replay(&decode(&encode(&journal)).unwrap()).unwrap();
            assert_eq!(&replayed[0], tc, "AP{p} journal is faithful");
            assert!(replayed[0].is_terminal());
            // Recovery on a terminal context is a no-op.
            let mut repo = actor.repo.clone();
            let before: Vec<String> = repo.names().iter().map(|n| repo.get(n).unwrap().to_xml()).collect();
            let mut ctxs = replayed;
            recover_in_doubt(&mut ctxs, &mut repo, 999);
            let after: Vec<String> = repo.names().iter().map(|n| repo.get(n).unwrap().to_xml()).collect();
            assert_eq!(before, after);
        }
    }
}
