//! Isolation integration tests: two concurrent transactions contending
//! for the same subtree of a shared provider document.
//!
//! With `PeerConfig::isolation` on, the first writer wins; the loser gets
//! an `IsolationConflict` fault that flows through the ordinary nested
//! recovery (abort + compensation), leaving a state equivalent to a
//! serial execution of the winner alone.

use axml::core::peer::WsdlCatalog;
use axml::p2p::LatencyModel;
use axml::prelude::*;

/// Two origins (AP1, AP4) concurrently invoke `write` on the shared
/// provider AP2, which replaces the *same* slot of the same document.
fn build(isolation: bool, stagger: u64) -> Sim<TxnMsg, AxmlPeer> {
    let mut wsdl = WsdlCatalog::default();
    wsdl.publish("write", &["slot"]);
    let mut peers = Vec::new();
    for id in 0..5u32 {
        let mut config = PeerConfig::default();
        config.isolation = isolation;
        config.use_alternative_providers = false;
        let mut peer = AxmlPeer::new(PeerId(id), config);
        peer.wsdl = wsdl.clone();
        peers.push(peer);
    }
    // Shared provider AP2.
    peers[2].repo.put_xml("shared", "<d><slot>initial</slot></d>").unwrap();
    peers[2].registry.register(
        ServiceDef::update(
            "write",
            "shared",
            UpdateAction::replace(
                Locator::parse("Select v/slot from v in d").unwrap(),
                vec![Fragment::elem_text("slot", "written-by-$who")],
            ),
        )
        .with_results(&["slot"])
        .with_duration(30), // long enough for the transactions to overlap
    );
    // Origins AP1 and AP4.
    for origin in [1u32, 4] {
        peers[origin as usize]
            .repo
            .put_xml(
                "mine",
                &format!(
                    r#"<d><out>o{origin}</out>
                    <axml:sc mode="replace" serviceNameSpace="w" serviceURL="peer://ap2" methodName="write">
                        <axml:params><axml:param name="who"><axml:value>AP{origin}</axml:value></axml:param></axml:params>
                    </axml:sc></d>"#
                ),
            )
            .unwrap();
        peers[origin as usize].registry.register(
            ServiceDef::query("go", "mine", SelectQuery::parse("Select v//slot from v in d").unwrap())
                .with_results(&["slot"]),
        );
    }
    // Deterministic latency so the overlap/no-overlap structure of each
    // test is guaranteed by arithmetic (stagger vs. duration), not by
    // the luck of the jitter draw: with latency fixed at 2, AP1's claim
    // window [32, 36] always covers AP4's claim at 35.
    let mut sim_config = SimConfig::default();
    sim_config.latency = LatencyModel { min: 2, max: 2 };
    let mut sim = Sim::new(sim_config, peers);
    sim.actor_mut(PeerId(1)).auto_submit = Some(("go".into(), vec![]));
    sim.actor_mut(PeerId(4)).auto_submit = Some(("go".into(), vec![]));
    sim.schedule_timer(0, PeerId(1), 0);
    sim.schedule_timer(stagger, PeerId(4), 0);
    sim
}

#[test]
fn overlapping_writers_first_wins_second_aborts() {
    let mut sim = build(true, 3);
    sim.run();
    let o1 = sim.actor(PeerId(1)).outcomes.first().expect("AP1 resolved").clone();
    let o4 = sim.actor(PeerId(4)).outcomes.first().expect("AP4 resolved").clone();
    assert!(o1.committed != o4.committed, "exactly one writer wins: {o1:?} vs {o4:?}");
    // The provider saw a conflict and rolled the loser back.
    let provider = sim.actor(PeerId(2));
    assert_eq!(provider.stats.isolation_conflicts, 1);
    let doc = provider.repo.get("shared").unwrap().to_xml();
    let winner = if o1.committed { "AP1" } else { "AP4" };
    assert!(doc.contains(&format!("written-by-{winner}")), "serial-equivalent final state, winner={winner}: {doc}");
    // No lingering claims.
    assert!(provider.conflicts.is_empty());
}

#[test]
fn without_isolation_both_commit_lost_update() {
    // The baseline the module exists to fix: both commit, the first write
    // is silently lost (classic lost update).
    let mut sim = build(false, 3);
    sim.run();
    let o1 = sim.actor(PeerId(1)).outcomes.first().expect("resolved").clone();
    let o4 = sim.actor(PeerId(4)).outcomes.first().expect("resolved").clone();
    assert!(o1.committed && o4.committed);
    assert_eq!(sim.actor(PeerId(2)).stats.isolation_conflicts, 0);
}

#[test]
fn serial_transactions_never_conflict() {
    // Staggered far apart: the first commits (releasing its claims)
    // before the second arrives.
    let mut sim = build(true, 500);
    sim.run();
    let o1 = sim.actor(PeerId(1)).outcomes.first().expect("resolved").clone();
    let o4 = sim.actor(PeerId(4)).outcomes.first().expect("resolved").clone();
    assert!(o1.committed && o4.committed, "serial writers both succeed");
    assert_eq!(sim.actor(PeerId(2)).stats.isolation_conflicts, 0);
    let doc = sim.actor(PeerId(2)).repo.get("shared").unwrap().to_xml();
    assert!(doc.contains("written-by-AP4"), "last writer's value persists: {doc}");
}

#[test]
fn aborted_loser_leaves_no_trace() {
    let mut sim = build(true, 3);
    sim.run();
    let provider = sim.actor(PeerId(2));
    let doc = provider.repo.get("shared").unwrap().to_xml();
    // Exactly one write survives — never both, never a mangled mix.
    let writes = doc.matches("written-by-").count();
    assert_eq!(writes, 1, "{doc}");
    assert!(!doc.contains("initial"), "the winner's replace landed: {doc}");
}
