//! End-to-end integration tests across the whole stack, via the facade.
//!
//! These retell the paper's narrative as assertions: the running ATP
//! example (§1/§3.1), both figures (§3.2/§3.3), and the headline
//! guarantees (relaxed atomicity via dynamic compensation).

use axml::core::compensate::{apply_compensation, compensation_for_effects};
use axml::core::peer::WsdlCatalog;
use axml::doc::{LocalInvoker, ServiceRegistry};
use axml::prelude::*;
use axml::workload::atp_document;

// ----------------------------------------------------------------------
// §3.1: dynamic compensation on the running example.
// ----------------------------------------------------------------------

#[test]
fn paper_section_3_1_delete_and_compensate() {
    let mut doc = atp_document();
    let before = doc.to_xml();
    let delete = UpdateAction::delete(
        Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;").unwrap(),
    );
    let report = delete.apply(&mut doc).unwrap();
    assert!(!doc.to_xml().contains("Swiss"));
    let comp = compensation_for_effects(&report.effects);
    apply_compensation(&mut doc, &comp).unwrap();
    assert_eq!(doc.to_xml(), before);
}

#[test]
fn paper_section_3_1_queries_a_and_b() {
    // Lazy evaluation materializes exactly the call each query needs.
    let mut reg = ServiceRegistry::new();
    reg.register(
        ServiceDef::function("getPoints", |_| Ok(vec![Fragment::elem_text("points", "890")])).with_results(&["points"]),
    );
    reg.register(
        ServiceDef::function("getGrandSlamsWonbyYear", |params| {
            let year = params.iter().find(|(k, _)| k == "year").map(|(_, v)| v.clone()).unwrap_or_default();
            Ok(vec![Fragment::elem("grandslamswon").with_attr("year", year).with_text("A, F")])
        })
        .with_results(&["grandslamswon"]),
    );
    let engine = MaterializationEngine::new(EvalMode::Lazy).with_external("year", "2005");

    for (query, expected_call, expected_change) in [
        (
            "Select p/citizenship, p/grandslamswon from p in ATPList//player where p/name/lastname = Federer;",
            "getGrandSlamsWonbyYear",
            r#"<grandslamswon year="2005">A, F</grandslamswon>"#,
        ),
        (
            "Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer;",
            "getPoints",
            "<points>890</points>",
        ),
    ] {
        let mut doc = atp_document();
        let before = doc.to_xml();
        let mut repo = Repository::new();
        let mut invoker = LocalInvoker { registry: &reg, repo: &mut repo };
        let q = SelectQuery::parse(query).unwrap();
        let (_hits, report) = engine.query(&mut doc, &q, &mut invoker).unwrap();
        assert_eq!(report.materialized, 1);
        assert_eq!(report.invocations[0].method, expected_call);
        assert!(doc.to_xml().contains(expected_change), "{}", doc.to_xml());
        // Query compensation restores the document exactly.
        let comp = compensation_for_effects(&report.effects);
        apply_compensation(&mut doc, &comp).unwrap();
        assert_eq!(doc.to_xml(), before);
    }
}

// ----------------------------------------------------------------------
// §3.2: Fig. 1 nested recovery through the full distributed stack.
// ----------------------------------------------------------------------

#[test]
fn fig1_full_stack_abort_restores_every_peer() {
    let mut cfg = PeerConfig::default();
    cfg.use_alternative_providers = false;
    let mut scenario = ScenarioBuilder::fig1().fault_at(5).config(cfg).build();
    let report = scenario.run();
    assert!(!report.outcome.unwrap().committed);
    assert!(report.atomic, "divergent: {:?}", scenario.divergent_docs());
}

#[test]
fn fig1_full_stack_commit_reaches_every_participant() {
    let mut scenario = ScenarioBuilder::fig1().build();
    let report = scenario.run();
    let outcome = report.outcome.unwrap();
    assert!(outcome.committed);
    let txn = outcome.txn;
    for p in [1u32, 2, 3, 4, 5, 6] {
        let ctx = scenario.sim.actor(PeerId(p)).context(txn).expect("participated");
        assert_eq!(ctx.state, TxnState::Committed, "AP{p}");
    }
}

#[test]
fn fig1_peer_independent_origin_drives_compensation() {
    let mut cfg = PeerConfig::default();
    cfg.peer_independent = true;
    cfg.use_alternative_providers = false;
    let mut builder = ScenarioBuilder::fig1().fault_at(2).config(cfg);
    // S2 is slow so AP3's whole subtree completes first and ships its
    // compensating-service bundle to the origin.
    builder.durations.insert(2, 400);
    let mut scenario = builder.build();
    let report = scenario.run();
    assert!(!report.outcome.unwrap().committed);
    assert!(report.atomic, "divergent: {:?}", scenario.divergent_docs());
    assert!(report.metrics.kind("compensate") > 0, "origin sent compensating services");
}

// ----------------------------------------------------------------------
// §3.3: chaining notation + sphere check via the public API.
// ----------------------------------------------------------------------

#[test]
fn chain_notation_matches_paper() {
    let mut scenario = ScenarioBuilder::fig2().build();
    let report = scenario.run();
    let txn = report.txn.unwrap();
    let chain = &scenario.sim.actor(PeerId(1)).context(txn).unwrap().chain;
    assert_eq!(chain.to_notation(), "[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]");
    assert!(!sphere_guarantees_atomicity(chain), "regular peers break the sphere");
}

#[test]
fn gossip_gives_every_peer_the_full_chain() {
    let mut scenario = ScenarioBuilder::fig2().build();
    let report = scenario.run();
    let txn = report.txn.unwrap();
    // After the run, every participant learned the full tree (6 peers).
    for p in [1u32, 2, 3, 4, 5, 6] {
        let chain = &scenario.sim.actor(PeerId(p)).context(txn).unwrap().chain;
        assert_eq!(chain.all_peers().len(), 6, "AP{p} sees {}", chain.to_notation());
    }
}

// ----------------------------------------------------------------------
// Multiple transactions through shared peers.
// ----------------------------------------------------------------------

#[test]
fn two_transactions_share_a_provider() {
    // AP1 and AP4 both originate transactions using AP2's and AP3's
    // services; both commit and both sets of effects survive.
    let mut wsdl = WsdlCatalog::default();
    wsdl.publish("echo2", &["r2"]);
    wsdl.publish("echo3", &["r3"]);
    let mut peers = Vec::new();
    for id in 0..5u32 {
        let mut peer = AxmlPeer::new(PeerId(id), PeerConfig::default());
        peer.wsdl = wsdl.clone();
        peers.push(peer);
    }
    for origin in [1u32, 4] {
        let doc = format!(
            r#"<d><out>from-{origin}</out>
                <axml:sc mode="merge" serviceNameSpace="x" serviceURL="peer://ap2" methodName="echo2"/>
                <axml:sc mode="merge" serviceNameSpace="x" serviceURL="peer://ap3" methodName="echo3"/>
            </d>"#
        );
        peers[origin as usize].repo.put_xml("mine", &doc).unwrap();
        peers[origin as usize].registry.register(
            ServiceDef::query("go", "mine", SelectQuery::parse("Select v//out, v//r2, v//r3 from v in d").unwrap())
                .with_results(&["out"]),
        );
    }
    for (id, name) in [(2u32, "echo2"), (3u32, "echo3")] {
        let tag = format!("r{id}");
        peers[id as usize].registry.register(
            ServiceDef::function(name, move |_| Ok(vec![Fragment::elem_text(tag.clone(), "hi")]))
                .with_results(&[if id == 2 { "r2" } else { "r3" }]),
        );
    }
    let mut sim = Sim::new(SimConfig::default(), peers);
    for origin in [1u32, 4] {
        sim.actor_mut(PeerId(origin)).auto_submit = Some(("go".into(), vec![]));
        sim.schedule_timer(0, PeerId(origin), 0);
    }
    sim.run();
    for origin in [1u32, 4] {
        let actor = sim.actor(PeerId(origin));
        let outcome = actor.outcomes.first().expect("resolved");
        assert!(outcome.committed, "AP{origin}");
        let items = &actor.results[&outcome.txn];
        let text: String = items.iter().map(|f| f.to_xml()).collect();
        assert!(text.contains(&format!("from-{origin}")));
        assert!(text.contains("<r2>hi</r2>"), "{text}");
        assert!(text.contains("<r3>hi</r3>"), "{text}");
    }
    // AP2 served both transactions under distinct contexts.
    assert_eq!(sim.actor(PeerId(2)).known_txns().len(), 2);
}

// ----------------------------------------------------------------------
// Facade surface.
// ----------------------------------------------------------------------

#[test]
fn prelude_covers_the_daily_api() {
    // Compile-time check that the prelude exposes what the examples use;
    // exercise a couple of items to keep the imports honest.
    let doc = Document::parse("<r><a>1</a></r>").unwrap();
    let q = SelectQuery::parse("Select v/a from v in r").unwrap();
    assert_eq!(q.eval(&doc).unwrap().len(), 1);
    let _ = ScMode::Replace;
    let _ = RecoveryStyle::ForwardFirst;
    let _ = EvalMode::Lazy;
    let _: Option<TxnOutcome> = None;
    let _ = ChurnSchedule::new();
    let chain = ActiveList::new(PeerId(1), true);
    assert!(sphere_guarantees_atomicity(&chain));
    let _ = CompensatingService::default();
    let _: Option<TransactionContext> = None;
    let _: Option<TxnId> = None;
    let _: Option<InvocationId> = None;
    let _: Option<TxnMsg> = None;
    let _: Option<Scenario> = None;
    let _: Option<ScenarioReport> = None;
    let _ = Flavor::Query;
    let _ = QName::new("axml:sc");
    let _: Option<NodeId> = None;
    let _: Option<PathExpr> = None;
    let _: Option<TransparentView> = None;
    let _: Option<Directory> = None;
    let _ = Fault::injected("x");
}
