//! Paper-fidelity suite: every concrete artifact printed in the paper —
//! documents, operations, compensations, handler snippets, notation —
//! parsed and executed verbatim (modulo XML well-formedness fixes the
//! paper itself elides, like quoting attribute values).

use axml::core::compensate::{apply_compensation, compensation_for_effects};
use axml::prelude::*;

/// §3.1's ATPList.xml, structurally verbatim (lines 1–26 of the listing).
const ATPLIST: &str = r#"<?xml version = "1.0" encoding = "UTF-8"?>
<ATPList date = "18042005">
     <player rank = "1">
          <name>
               <firstname>Roger</firstname>
               <lastname>Federer</lastname>
          </name>
          <citizenship>Swiss</citizenship>
          <axml:sc mode = "replace" serviceNameSpace = "getPoints" serviceURL = "peer://ap2" methodName = "getPoints">
               <axml:params>
                    <axml:param name = "name">
                    <axml:value>Roger Federer</axml:value>
                    </axml:param>
               </axml:params>
               <points>475</points>
          </axml:sc>
          <axml:sc mode = "merge" serviceNameSpace = "getGrandSlamsWonbyYear" serviceURL = "peer://ap3" methodName = "getGrandSlamsWonbyYear">
               <axml:params>
                    <axml:param name = "name">
                    <axml:value>Roger Federer</axml:value>
                    </axml:param>
                    <axml:param name = "year">
                    <axml:value>$year (external value)</axml:value>
                    </axml:param>
               </axml:params>
               <grandslamswon year = "2003">A, W</grandslamswon>
               <grandslamswon year = "2004">A, U</grandslamswon>
          </axml:sc>
     </player>
</ATPList>"#;

#[test]
fn section_1_intro_snippet_parses() {
    // The introduction's getGrandSlamsWon example.
    let src = r#"<?xml version = "1.0" encoding = "UTF-8"?>
<ATPList date = "18042005">
     <player rank = "1">
          <name>
               <firstname>Roger</firstname>
               <lastname>Federer</lastname>
          </name>
          <citizenship>Swiss</citizenship>
          <points>475</points>
          <axml:sc mode = "replace" serviceNameSpace = "getGrandSlamsWon" serviceURL = "peer://ap2" methodName = "getGrandSlamsWon">
               <axml:params>
                    <axml:param name = "name">
                    <axml:value>Roger Federer</axml:value>
                    </axml:param>
               </axml:params>
          </axml:sc>
     </player>
</ATPList>"#;
    let doc = Document::parse(src).unwrap();
    let calls = ServiceCall::scan(&doc);
    assert_eq!(calls.len(), 1);
    assert_eq!(calls[0].method, "getGrandSlamsWon");
    assert_eq!(calls[0].mode, ScMode::Replace);
}

#[test]
fn section_3_1_atplist_and_both_calls() {
    let doc = Document::parse(ATPLIST).unwrap();
    let calls = ServiceCall::scan(&doc);
    assert_eq!(calls.len(), 2);
    assert_eq!(calls[0].method, "getPoints");
    assert_eq!(calls[0].mode, ScMode::Replace);
    assert_eq!(calls[1].method, "getGrandSlamsWonbyYear");
    assert_eq!(calls[1].mode, ScMode::Merge);
    // The external-value convention is recognized.
    assert!(matches!(
        &calls[1].params[1].value,
        axml::doc::ParamValue::External(name) if name == "year"
    ));
}

#[test]
fn section_3_1_delete_operation_and_printed_compensation() {
    // The paper prints both the delete and its compensating insert; check
    // that our *constructed* compensation has exactly the printed shape:
    // data = the deleted <citizenship>Swiss</citizenship>, location = the
    // parent of the deleted node.
    let mut doc = Document::parse(ATPLIST).unwrap();
    let delete = UpdateAction::parse_action_xml(
        r#"<action type="delete"><location>Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;</location></action>"#,
    )
    .unwrap();
    let report = delete.apply(&mut doc).unwrap();
    let comp = compensation_for_effects(&report.effects);
    assert_eq!(comp.len(), 1);
    assert_eq!(comp[0].ty, axml::query::ActionType::Insert);
    assert_eq!(comp[0].data[0].to_xml(), "<citizenship>Swiss</citizenship>");
    // Its location resolves to the player element — the `/..` of the
    // deleted node, exactly as printed.
    let target = comp[0].location.locate(&doc).unwrap()[0];
    assert_eq!(doc.name(target).unwrap().local, "player");
}

#[test]
fn section_3_1_replace_decomposition_matches_paper() {
    // "<action type=replace> … decomposes to: delete + insert" — and the
    // compensation is the printed delete + insert(Swiss) pair.
    let mut doc = Document::parse(
        r#"<ATPList><player><name><lastname>Nadal</lastname></name><citizenship>Swiss</citizenship></player></ATPList>"#,
    )
    .unwrap();
    let replace = UpdateAction::parse_action_xml(
        r#"<action type="replace"><data><citizenship>USA</citizenship></data><location>Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal;</location></action>"#,
    )
    .unwrap();
    let report = replace.apply(&mut doc).unwrap();
    // Decomposition: exactly delete-then-insert.
    assert_eq!(report.effects.len(), 2);
    assert!(matches!(report.effects[0], axml::query::Effect::Deleted { .. }));
    assert!(matches!(report.effects[1], axml::query::Effect::Inserted { .. }));
    // Compensation restores Swiss.
    let comp = compensation_for_effects(&report.effects);
    apply_compensation(&mut doc, &comp).unwrap();
    assert!(doc.to_xml().contains("<citizenship>Swiss</citizenship>"));
    assert!(!doc.to_xml().contains("USA"));
}

#[test]
fn section_3_2_fault_handler_snippet() {
    // The getGrandSlamsWon-with-handlers listing.
    let src = r#"<r><axml:sc serviceNameSpace="g" serviceURL="peer://ap2" methodName="getGrandSlamsWon">
        <axml:params>
             <axml:param name= "name">
             <axml:value>Rafel Nadal</axml:value>
             </axml:param>
        </axml:params>
        <axml:catch faultName = "A" faultVariable = "fv"><axml:retry times= "2" wait="5"><axml:sc serviceNameSpace="g" serviceURL="peer://replica" methodName="getGrandSlamsWon"/></axml:retry></axml:catch>
        <axml:catch faultName = "B" faultVariable = "fv"><fallback/></axml:catch>
        <axml:catchAll></axml:catchAll>
    </axml:sc></r>"#;
    let doc = Document::parse(src).unwrap();
    let call = &ServiceCall::scan(&doc)[0];
    assert_eq!(call.handlers.len(), 3);
    assert_eq!(call.handlers[0].fault_name.as_deref(), Some("A"));
    let axml::doc::HandlerAction::Retry { times, wait, alternative } = &call.handlers[0].action else {
        panic!("catch A is a retry");
    };
    assert_eq!((*times, *wait), (2, 5));
    assert_eq!(
        alternative.as_ref().unwrap().service_url,
        "peer://replica",
        "the optional <axml:sc> retries on a replicated peer"
    );
    assert!(call.handlers[2].fault_name.is_none(), "catchAll last");
}

#[test]
fn section_3_3_active_list_notation() {
    // Build the §3.3 list programmatically and match the printed notation.
    let mut list = ActiveList::new(PeerId(1), true);
    list.add_invocation(PeerId(1), PeerId(2), false);
    list.add_invocation(PeerId(2), PeerId(3), false);
    list.add_invocation(PeerId(2), PeerId(4), false);
    list.add_invocation(PeerId(3), PeerId(6), false);
    list.add_invocation(PeerId(4), PeerId(5), false);
    assert_eq!(list.to_notation(), "[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]");
    // And the simple forms.
    let mut simple = ActiveList::new(PeerId(7), false);
    simple.add_invocation(PeerId(7), PeerId(8), false);
    assert_eq!(simple.to_notation(), "[AP7 → AP8]");
}

#[test]
fn section_3_3_sphere_of_atomicity_statement() {
    // "atomicity may still be guaranteed for a transaction if all the
    // involved peers (for that transaction) are super peers".
    let mut all_super = ActiveList::new(PeerId(1), true);
    all_super.add_invocation(PeerId(1), PeerId(2), true);
    assert!(sphere_guarantees_atomicity(&all_super));
    let mut mixed = all_super.clone();
    mixed.add_invocation(PeerId(2), PeerId(3), false);
    assert!(!sphere_guarantees_atomicity(&mixed));
}

#[test]
fn paper_query_a_and_b_line_25_and_line_14_changes() {
    // Query A adds line 25 (the 2005 grandslamswon); Query B changes line
    // 14 (points 475 → 890). Reproduced through the materialization
    // engine with the documented service behaviors.
    use axml::doc::{LocalInvoker, ServiceRegistry};
    let mut reg = ServiceRegistry::new();
    reg.register(
        ServiceDef::function("getPoints", |_| Ok(vec![Fragment::elem_text("points", "890")])).with_results(&["points"]),
    );
    reg.register(
        ServiceDef::function("getGrandSlamsWonbyYear", |params| {
            let year = params.iter().find(|(k, _)| k == "year").map(|(_, v)| v.clone()).unwrap_or_default();
            Ok(vec![Fragment::elem("grandslamswon").with_attr("year", year).with_text("A, F")])
        })
        .with_results(&["grandslamswon"]),
    );
    let engine = MaterializationEngine::new(EvalMode::Lazy).with_external("year", "2005");

    // Query A.
    let mut doc = Document::parse(ATPLIST).unwrap();
    let mut repo = Repository::new();
    let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
    let qa = SelectQuery::parse(
        "Select p/citizenship, p/grandslamswon from p in ATPList//player where p/name/lastname = Federer;",
    )
    .unwrap();
    let (_, report) = engine.query(&mut doc, &qa, &mut inv).unwrap();
    assert_eq!(report.effects.len(), 1, "the ONLY change is the added line 25");
    assert!(doc.to_xml().contains(r#"<grandslamswon year="2005">A, F</grandslamswon>"#));
    assert!(doc.to_xml().contains("<points>475</points>"), "line 14 untouched by query A");

    // Query B.
    let mut doc = Document::parse(ATPLIST).unwrap();
    let mut repo = Repository::new();
    let mut inv = LocalInvoker { registry: &reg, repo: &mut repo };
    let qb =
        SelectQuery::parse("Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer;")
            .unwrap();
    let (_, report) = engine.query(&mut doc, &qb, &mut inv).unwrap();
    assert!(doc.to_xml().contains("<points>890</points>"), "line 14 changed 475 → 890");
    assert!(!doc.to_xml().contains(r#"year="2005""#), "grandslams untouched by query B");
    // Compensation for query B: "a replace operation to change the value
    // … back to 475" — as a delete(890)+insert(475) pair.
    let comp = compensation_for_effects(&report.effects);
    apply_compensation(&mut doc, &comp).unwrap();
    assert!(doc.to_xml().contains("<points>475</points>"));
}
