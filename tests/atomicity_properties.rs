//! Property-based tests for the headline invariants (DESIGN.md §6):
//! random invocation trees × random fault/disconnect injection must
//! always terminate with every context terminal and, on abort, every
//! connected peer's documents restored.

use axml::prelude::*;
use axml::workload::{tree_edges, TreeShape};
use proptest::prelude::*;

/// Builds and runs a random scenario; returns (report, scenario).
fn run_random(
    depth: usize,
    fanout: usize,
    fault_peer: Option<u32>,
    disconnects: Vec<(u64, u32)>,
    chaining: bool,
    peer_independent: bool,
    seed: u64,
) -> (axml::core::scenarios::ScenarioReport, axml::core::scenarios::Scenario) {
    let shape = TreeShape { depth, fanout };
    let edges = tree_edges(1, shape);
    let mut config = PeerConfig::default();
    config.chaining = chaining;
    config.peer_independent = peer_independent;
    let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Update).config(config);
    builder.seed = seed;
    builder.deadline = 20_000;
    if let Some(f) = fault_peer {
        builder.inject_fault = Some(f);
    }
    for (at, p) in disconnects {
        builder = builder.disconnect(at, p);
    }
    let mut scenario = builder.build();
    let report = scenario.run();
    (report, scenario)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-fault injection anywhere in the tree: the transaction
    /// resolves, every connected context is terminal, and the
    /// all-or-nothing check holds.
    #[test]
    fn single_fault_always_resolves_atomically(
        depth in 1usize..4,
        fanout in 1usize..3,
        fault_idx in 0usize..100,
        chaining in any::<bool>(),
        peer_independent in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let edges = tree_edges(1, TreeShape { depth, fanout });
        let peers: Vec<u32> = edges.iter().map(|(_, c)| *c).collect();
        let fault_peer = peers[fault_idx % peers.len()];
        let (report, scenario) =
            run_random(depth, fanout, Some(fault_peer), vec![], chaining, peer_independent, seed);
        prop_assert!(report.outcome.is_some(), "must resolve");
        prop_assert!(report.atomic, "divergent: {:?}", scenario.divergent_docs());
        // No orphan contexts anywhere.
        for p in std::iter::once(1u32).chain(peers.iter().copied()) {
            let actor = scenario.sim.actor(PeerId(p));
            for t in actor.known_txns() {
                prop_assert!(actor.context(t).unwrap().is_terminal(), "AP{p} context active");
            }
        }
    }

    /// Single disconnection anywhere, any time, **with chaining**: if the
    /// run resolves by the deadline, the all-or-nothing check (over
    /// connected peers) holds. Without chaining this property is *false*
    /// — an intermediate peer dying after consuming a child's result
    /// strands that child's effects, since no surviving peer knows it
    /// participated. That gap is the paper's motivation for chaining and
    /// is quantified (not asserted away) in experiments E2/E6.
    #[test]
    fn single_disconnect_with_chaining_preserves_relaxed_atomicity(
        depth in 1usize..4,
        fanout in 1usize..3,
        victim_idx in 0usize..100,
        at in 1u64..150,
        seed in 0u64..1000,
    ) {
        let edges = tree_edges(1, TreeShape { depth, fanout });
        let peers: Vec<u32> = edges.iter().map(|(_, c)| *c).collect();
        let victim = peers[victim_idx % peers.len()];
        let (report, scenario) =
            run_random(depth, fanout, None, vec![(at, victim)], true, false, seed);
        if report.outcome.is_some() {
            prop_assert!(report.atomic, "divergent: {:?}", scenario.divergent_docs());
        }
    }

    /// Without chaining the run must still *terminate* (no hangs), even
    /// though atomicity can be violated by disconnection.
    #[test]
    fn single_disconnect_without_chaining_still_terminates(
        depth in 1usize..4,
        fanout in 1usize..3,
        victim_idx in 0usize..100,
        at in 1u64..150,
        seed in 0u64..1000,
    ) {
        let edges = tree_edges(1, TreeShape { depth, fanout });
        let peers: Vec<u32> = edges.iter().map(|(_, c)| *c).collect();
        let victim = peers[victim_idx % peers.len()];
        let (report, scenario) =
            run_random(depth, fanout, None, vec![(at, victim)], false, false, seed);
        prop_assert!(report.finished_at < 20_000, "queue drained before the deadline");
        // The origin itself always ends terminal.
        let origin = scenario.sim.actor(PeerId(1));
        for t in origin.known_txns() {
            prop_assert!(origin.context(t).unwrap().is_terminal());
        }
    }

    /// No faults, no churn: every tree shape commits and every
    /// participant's update landed.
    #[test]
    fn fault_free_runs_always_commit(
        depth in 1usize..4,
        fanout in 1usize..4,
        seed in 0u64..1000,
        peer_independent in any::<bool>(),
    ) {
        let (report, scenario) = run_random(depth, fanout, None, vec![], true, peer_independent, seed);
        let outcome = report.outcome.expect("resolves");
        prop_assert!(outcome.committed);
        prop_assert!(report.atomic);
        let edges = tree_edges(1, TreeShape { depth, fanout });
        for (_, child) in edges {
            let actor = scenario.sim.actor(PeerId(child));
            let doc = actor.repo.get(&format!("d{child}")).expect("hosts its doc");
            let marker = format!("done-{child}");
            prop_assert!(doc.to_xml().contains(&marker));
        }
    }

    /// Determinism: the same configuration replays to the same outcome,
    /// message counts, and final documents.
    #[test]
    fn runs_replay_deterministically(
        depth in 1usize..3,
        fault in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let edges = tree_edges(1, TreeShape { depth, fanout: 2 });
        let peers: Vec<u32> = edges.iter().map(|(_, c)| *c).collect();
        let fault_peer = if fault { Some(peers[peers.len() / 2]) } else { None };
        let (r1, s1) = run_random(depth, 2, fault_peer, vec![], true, false, seed);
        let (r2, s2) = run_random(depth, 2, fault_peer, vec![], true, false, seed);
        prop_assert_eq!(r1.outcome, r2.outcome);
        prop_assert_eq!(r1.metrics.sent, r2.metrics.sent);
        prop_assert_eq!(r1.metrics.delivered, r2.metrics.delivered);
        for p in std::iter::once(1u32).chain(peers) {
            let a1 = s1.sim.actor(PeerId(p));
            let a2 = s2.sim.actor(PeerId(p));
            for name in a1.repo.names() {
                prop_assert_eq!(
                    a1.repo.get(name).expect("doc").to_xml(),
                    a2.repo.get(name).expect("doc").to_xml()
                );
            }
        }
    }
}

/// Double faults: two peers fail in the same transaction. The protocol
/// must still terminate with terminal contexts and compensated documents.
#[test]
fn double_fault_still_atomic() {
    for seed in 0..6u64 {
        let edges = tree_edges(1, TreeShape { depth: 3, fanout: 2 });
        let mut config = PeerConfig::default();
        config.use_alternative_providers = false;
        let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Update).config(config);
        builder.seed = seed;
        // Two leaf-ish peers fault: inject via the registry after build.
        builder.inject_fault = Some(8);
        let mut scenario = builder.build();
        // Second fault, planted directly.
        let second = scenario.sim.actor_mut(PeerId(12));
        second.registry.get_mut("S12").expect("service").injected_fault = Some(Fault::injected("second failure"));
        let report = scenario.run();
        assert!(report.outcome.is_some(), "seed {seed}: must resolve");
        assert!(!report.outcome.unwrap().committed);
        assert!(report.atomic, "seed {seed}: divergent {:?}", scenario.divergent_docs());
    }
}

/// A disconnected peer that reconnects later must not resurrect the
/// transaction: late results are answered with aborts.
#[test]
fn reconnect_after_abort_stays_aborted() {
    let edges = tree_edges(1, TreeShape { depth: 2, fanout: 2 });
    let mut config = PeerConfig::default();
    config.use_alternative_providers = false;
    let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Update).config(config);
    builder.durations.insert(4, 300); // AP4 busy long enough to miss the abort
    builder.inject_fault = Some(5);
    let mut scenario = builder.build();
    scenario.sim.schedule_reconnect(0, PeerId(4)); // no-op (connected)
    let report = scenario.run();
    assert!(!report.outcome.unwrap().committed);
    assert!(report.atomic, "divergent: {:?}", scenario.divergent_docs());
}
