//! Soak tests: many transactions through the same peers, back to back,
//! with churn injected mid-stream. Checks there is no cross-transaction
//! leakage (contexts, watches, chains) and the peers end quiescent.

use axml::prelude::*;

/// Runs `n` sequential query-flavor transactions at the Fig. 1 origin.
fn run_sequential(n: u64, disconnect: Option<(u64, u32, u64)>) -> axml::core::scenarios::Scenario {
    let mut builder = ScenarioBuilder::fig1().flavor(Flavor::Query);
    builder.deadline = 100_000;
    if let Some((at, peer, back_at)) = disconnect {
        builder = builder.disconnect(at, peer);
        let mut scenario = builder.build();
        scenario.sim.schedule_reconnect(back_at, PeerId(peer));
        for k in 1..n {
            scenario.sim.schedule_timer(k * 400, PeerId(1), 0);
        }
        scenario.sim.run_until(100_000);
        return scenario;
    }
    let mut scenario = builder.build();
    for k in 1..n {
        scenario.sim.schedule_timer(k * 400, PeerId(1), 0);
    }
    scenario.sim.run_until(100_000);
    scenario
}

#[test]
fn five_sequential_transactions_all_commit() {
    let scenario = run_sequential(5, None);
    let origin = scenario.sim.actor(PeerId(1));
    assert_eq!(origin.outcomes.len(), 5);
    for o in &origin.outcomes {
        assert!(o.committed, "{o:?}");
    }
    // Distinct transaction ids, one context each at every participant.
    let txns: std::collections::BTreeSet<TxnId> = origin.outcomes.iter().map(|o| o.txn).collect();
    assert_eq!(txns.len(), 5);
    for p in [1u32, 2, 3, 4, 5, 6] {
        let actor = scenario.sim.actor(PeerId(p));
        assert_eq!(actor.known_txns().len(), 5, "AP{p} served all five");
        assert!(actor.is_quiescent(), "AP{p} has leftover work");
        assert!(actor.watched_peers().is_empty(), "AP{p} leaked a watch");
        for t in actor.known_txns() {
            assert_eq!(actor.context(t).unwrap().state, TxnState::Committed);
        }
    }
}

#[test]
fn transaction_during_outage_aborts_later_ones_commit() {
    // AP5 is down for the second transaction's window (t≈400..800) and
    // back for the rest.
    let scenario = run_sequential(5, Some((395, 5, 790)));
    let origin = scenario.sim.actor(PeerId(1));
    assert_eq!(origin.outcomes.len(), 5);
    let committed: Vec<bool> = origin.outcomes.iter().map(|o| o.committed).collect();
    assert!(committed[0], "first txn ran before the outage");
    assert!(!committed[1], "second txn hit the outage: {committed:?}");
    assert!(committed[2] && committed[3] && committed[4], "recovery after reconnect: {committed:?}");
    // Every context everywhere is terminal and no work leaked.
    for p in [1u32, 2, 3, 4, 6] {
        let actor = scenario.sim.actor(PeerId(p));
        assert!(actor.is_quiescent(), "AP{p}");
        for t in actor.known_txns() {
            assert!(actor.context(t).unwrap().is_terminal(), "AP{p}/{t}");
        }
    }
}

#[test]
fn interleaved_transactions_from_two_origins() {
    // AP1 and AP4 run transactions over overlapping participants with
    // staggered, overlapping schedules (query flavor: no write conflicts).
    let edges = [(1u32, 2u32), (1, 3), (4, 2), (4, 3)];
    let mut builder = ScenarioBuilder::new(1, &edges).flavor(Flavor::Query);
    builder.deadline = 50_000;
    let mut scenario = builder.build();
    // AP4 also needs a root service: reuse S4 (it hosts d4 with edges 2,3).
    scenario.sim.actor_mut(PeerId(4)).auto_submit = Some(("S4".into(), vec![]));
    // The builder already scheduled AP1's first submission at t=0.
    for k in 0..3u64 {
        if k > 0 {
            scenario.sim.schedule_timer(k * 37, PeerId(1), 0);
        }
        scenario.sim.schedule_timer(k * 37 + 11, PeerId(4), 0);
    }
    scenario.sim.run_until(50_000);
    for origin in [1u32, 4] {
        let actor = scenario.sim.actor(PeerId(origin));
        assert_eq!(actor.outcomes.len(), 3, "AP{origin}");
        for o in &actor.outcomes {
            assert!(o.committed, "AP{origin}: {o:?}");
        }
    }
    // Shared providers tracked 6 separate contexts.
    for provider in [2u32, 3] {
        assert_eq!(scenario.sim.actor(PeerId(provider)).known_txns().len(), 6, "AP{provider}");
        assert!(scenario.sim.actor(PeerId(provider)).is_quiescent());
    }
}
