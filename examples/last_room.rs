//! Isolation: two travel agencies race for the last hotel room.
//!
//! Both submit a booking transaction against the same hotel peer at
//! (almost) the same instant. With path-level isolation enabled, the
//! hotel serializes them: the first writer books the room, the second's
//! transaction aborts cleanly and is compensated — no double booking, no
//! lost update.
//!
//! ```text
//! cargo run --example last_room
//! ```

use axml::core::peer::WsdlCatalog;
use axml::prelude::*;

fn run(isolation: bool) {
    println!("— isolation {} —", if isolation { "ON" } else { "OFF" });
    let mut wsdl = WsdlCatalog::default();
    wsdl.publish("bookRoom", &["room"]);
    let mut peers = Vec::new();
    for id in 0..4u32 {
        let mut config = PeerConfig::default();
        config.isolation = isolation;
        config.use_alternative_providers = false;
        let mut peer = AxmlPeer::new(PeerId(id), config);
        peer.wsdl = wsdl.clone();
        peers.push(peer);
    }
    // AP1: the hotel, with exactly one free room.
    peers[1].repo.put_xml("rooms", r#"<rooms><room n="204">free</room></rooms>"#).unwrap();
    peers[1].registry.register(
        ServiceDef::update(
            "bookRoom",
            "rooms",
            // No availability check in the service itself — that is the
            // point: without isolation the second writer silently
            // overwrites the first (a lost update / double booking).
            UpdateAction::replace(
                Locator::parse("Select v/room from v in rooms").unwrap(),
                vec![Fragment::elem("room").with_attr("n", "204").with_text("booked for $who")],
            ),
        )
        .with_results(&["room"])
        .with_duration(30),
    );
    // AP2 and AP3: competing agencies.
    for (agency, who) in [(2u32, "Alice"), (3u32, "Bob")] {
        peers[agency as usize]
            .repo
            .put_xml(
                "trip",
                &format!(
                    r#"<trip><axml:sc mode="replace" serviceNameSpace="h" serviceURL="peer://ap1" methodName="bookRoom">
                        <axml:params><axml:param name="who"><axml:value>{who}</axml:value></axml:param></axml:params>
                    </axml:sc></trip>"#
                ),
            )
            .unwrap();
        peers[agency as usize].registry.register(
            ServiceDef::query("book", "trip", SelectQuery::parse("Select v//room from v in trip").unwrap())
                .with_results(&["room"]),
        );
    }
    let mut sim = Sim::new(SimConfig::default(), peers);
    sim.actor_mut(PeerId(2)).auto_submit = Some(("book".into(), vec![]));
    sim.actor_mut(PeerId(3)).auto_submit = Some(("book".into(), vec![]));
    sim.schedule_timer(0, PeerId(2), 0);
    sim.schedule_timer(2, PeerId(3), 0);
    sim.run();
    for (agency, who) in [(2u32, "Alice"), (3u32, "Bob")] {
        let outcome = sim.actor(PeerId(agency)).outcomes.first().expect("resolved");
        println!("  {who}: {}", if outcome.committed { "their booking committed" } else { "aborted (room taken)" });
    }
    let rooms = sim.actor(PeerId(1)).repo.get("rooms").unwrap().to_xml();
    println!("  hotel state: {rooms}");
    let conflicts = sim.actor(PeerId(1)).stats.isolation_conflicts;
    println!("  conflicts detected: {conflicts}\n");
}

fn main() {
    run(true);
    run(false);
    println!("With isolation, exactly one booking wins; the loser aborts atomically.");
    println!("Without it, both transactions 'commit' — but only Bob's booking exists:");
    println!("Alice's committed booking was silently overwritten (the lost update).");
}
