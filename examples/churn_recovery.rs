//! Peer disconnection and chaining (§3.3) on the paper's Fig. 2 topology.
//!
//! Runs scenario (b) — the parent AP3 disconnects while its child AP6 is
//! still working — twice: with chaining (active-peer lists travel with
//! every invocation) and without. With chaining, AP6 detects the
//! disconnection synchronously while returning its results, re-routes
//! them to the grandparent AP2, and AP2 redoes S3 on a replica *reusing
//! AP6's work*. Without chaining, the work is discarded and recovery
//! waits for slow keep-alive timeouts.
//!
//! ```text
//! cargo run --example churn_recovery
//! ```

use axml::prelude::*;

fn run(chaining: bool) {
    println!("— scenario (b), chaining {} —", if chaining { "ON" } else { "OFF" });
    let mut config = PeerConfig::default();
    config.chaining = chaining;
    // Slow pings: the chaining path (send-failure detection) races far
    // ahead of the keep-alive fallback.
    config.ping_interval = 300;
    config.ping_timeout = 700;
    let mut builder = ScenarioBuilder::fig2().flavor(Flavor::Update).config(config);
    builder.durations.insert(6, 60); // AP6 is busy when AP3 drops
    let (builder, replica) = builder.with_replica(3);
    let mut scenario = builder.disconnect(30, 3).build();
    let report = scenario.run();

    let outcome = report.outcome.expect("resolved");
    println!("  outcome: {} at t={}", if outcome.committed { "COMMITTED" } else { "ABORTED" }, outcome.resolved_at);
    if let Some(txn) = report.txn {
        if let Some(tc) = scenario.sim.actor(PeerId(1)).context(txn) {
            println!("  active-peer list at origin: {}", tc.chain.to_notation());
        }
    }
    for (peer, stats) in &report.stats {
        for d in &stats.detections {
            println!("  {peer} detected {} at t={} via {:?}", d.disconnected, d.at, d.how);
        }
    }
    let reused: u64 = report.stats.values().map(|s| s.work_reused).sum();
    let wasted: u64 = report.stats.values().map(|s| s.work_wasted).sum();
    println!("  work reused: {reused}, work wasted: {wasted}");
    if chaining {
        let rep = &report.stats[&PeerId(replica)];
        if rep.work_reused > 0 {
            println!("  ✔ the replica redid S3 with AP6's results passed as input — no recomputation");
        }
    }
    println!("  atomic: {}\n", report.atomic);
}

fn main() {
    println!("Fig. 2 topology: [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]");
    println!("AP3 disconnects at t=30 while AP6 is processing S6 (until ~t=65).\n");
    run(true);
    run(false);
    println!("Chaining turns a slow, wasteful recovery into a fast one that salvages AP6's work.");
}
