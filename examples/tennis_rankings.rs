//! The paper's running example, distributed: an ATP rankings document on
//! one peer with embedded calls to `getPoints` and
//! `getGrandSlamsWonbyYear` services hosted on other peers.
//!
//! Demonstrates lazy materialization (queries A and B from §3.1
//! materialize *different* calls) and the dynamically-constructed
//! compensation for each.
//!
//! ```text
//! cargo run --example tennis_rankings
//! ```

use axml::core::compensate::{apply_compensation, compensation_for_effects};
use axml::doc::{LocalInvoker, MaterializationEngine, ServiceRegistry};
use axml::prelude::*;
use axml::workload::atp_document;

fn services() -> ServiceRegistry {
    let mut reg = ServiceRegistry::new();
    reg.register(
        ServiceDef::function("getPoints", |_params| Ok(vec![Fragment::elem_text("points", "890")]))
            .with_results(&["points"]),
    );
    reg.register(
        ServiceDef::function("getGrandSlamsWonbyYear", |params| {
            let year = params.iter().find(|(k, _)| k == "year").map(|(_, v)| v.clone()).unwrap_or_default();
            Ok(vec![Fragment::elem("grandslamswon").with_attr("year", year).with_text("A, F")])
        })
        .with_results(&["grandslamswon"]),
    );
    reg
}

fn run_query(label: &str, query_src: &str) {
    let mut doc = atp_document();
    let before = doc.to_xml();
    let reg = services();
    let mut repo = Repository::new();
    let mut invoker = LocalInvoker { registry: &reg, repo: &mut repo };
    let engine = MaterializationEngine::new(EvalMode::Lazy).with_external("year", "2005");
    let query = SelectQuery::parse(query_src).expect("query parses");

    let (hits, report) = engine.query(&mut doc, &query, &mut invoker).expect("query evaluates");
    println!("— {label} —");
    println!(
        "  materialized {} call(s): {:?}",
        report.materialized,
        report.invocations.iter().map(|i| i.method.as_str()).collect::<Vec<_>>()
    );
    println!("  results:");
    for h in &hits {
        println!("    {}", doc.subtree_to_xml(*h));
    }

    // Query compensation: undo exactly what materialization changed.
    let comp = compensation_for_effects(&report.effects);
    println!("  compensation: {} action(s)", comp.len());
    apply_compensation(&mut doc, &comp).expect("compensation applies");
    assert_eq!(doc.to_xml(), before);
    println!("  ✔ document restored\n");
}

fn main() {
    println!("ATPList.xml with embedded getPoints (replace) and getGrandSlamsWonbyYear (merge)\n");
    // Query A (§3.1): needs grandslamswon → materializes only the merge call.
    run_query(
        "Query A: citizenship + grandslamswon",
        "Select p/citizenship, p/grandslamswon from p in ATPList//player where p/name/lastname = Federer;",
    );
    // Query B (§3.1): needs points → materializes only the replace call
    // (475 → 890), whose compensation is a replace back to 475.
    run_query(
        "Query B: citizenship + points",
        "Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer;",
    );
    println!("Lazy evaluation materialized different calls per query — which is why");
    println!("the paper's compensation must be constructed dynamically at run time.");
}
