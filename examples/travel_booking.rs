//! The classic compensation example — "the compensation of Book Hotel is
//! Cancel Hotel Booking" — run over the distributed transactional stack.
//!
//! A travel agency peer (AP1) plans a trip whose document embeds calls to
//! a flight-booking service on AP2 and a hotel-booking service on AP3.
//! Both are *update* services writing real bookings into their peers'
//! documents. When the hotel service faults, the nested recovery protocol
//! aborts the transaction and the flight booking is compensated away —
//! dynamically, from the log. A second run attaches a fault handler
//! (voucher substitution) and commits instead.
//!
//! ```text
//! cargo run --example travel_booking
//! ```

use axml::core::peer::WsdlCatalog;
use axml::prelude::*;

fn build_network(hotel_fails: bool, with_handler: bool) -> Sim<TxnMsg, AxmlPeer> {
    let mut wsdl = WsdlCatalog::default();
    wsdl.publish("bookFlight", &["confirmation"]);
    wsdl.publish("bookHotel", &["confirmation"]);
    let mut directory = Directory::new();
    directory.add_service_provider("bookFlight", PeerId(2));
    directory.add_service_provider("bookHotel", PeerId(3));

    let mut peers = Vec::new();
    for id in 0..4u32 {
        let mut config = PeerConfig::default();
        config.use_alternative_providers = false;
        let mut peer = AxmlPeer::new(PeerId(id), config);
        peer.wsdl = wsdl.clone();
        peer.directory = directory.clone();
        peers.push(peer);
    }

    // AP1: the travel agency. Its trip document embeds both bookings.
    let handler = if with_handler {
        r#"<axml:catchAll><confirmation hotel="voucher">fallback voucher issued</confirmation></axml:catchAll>"#
    } else {
        ""
    };
    let trip = format!(
        r#"<trip dest="Rennes">
            <axml:sc mode="replace" serviceNameSpace="travel" serviceURL="peer://ap2" methodName="bookFlight">
                <axml:params><axml:param name="who"><axml:value>Dr. Biswas</axml:value></axml:param></axml:params>
            </axml:sc>
            <axml:sc mode="replace" serviceNameSpace="travel" serviceURL="peer://ap3" methodName="bookHotel">
                <axml:params><axml:param name="who"><axml:value>Dr. Biswas</axml:value></axml:param></axml:params>
                {handler}
            </axml:sc>
        </trip>"#
    );
    peers[1].repo.put_xml("trip", &trip).expect("trip parses");
    peers[1].registry.register(
        ServiceDef::query(
            "planTrip",
            "trip",
            SelectQuery::parse("Select v//confirmation from v in trip").expect("query"),
        )
        .with_results(&["confirmation"]),
    );

    // AP2: the airline. bookFlight writes a booking into flights.xml.
    peers[2].repo.put_xml("flights", r#"<flights airline="AF"/>"#).expect("parses");
    peers[2].registry.register(
        ServiceDef::update(
            "bookFlight",
            "flights",
            UpdateAction::insert(
                Locator::parse("flights").expect("locator"),
                vec![Fragment::elem("confirmation").with_attr("flight", "AF-123").with_text("seat 12A for $who")],
            ),
        )
        .with_results(&["confirmation"]),
    );

    // AP3: the hotel. bookHotel writes into rooms.xml — or faults.
    peers[3].repo.put_xml("rooms", r#"<rooms hotel="Le Central"/>"#).expect("parses");
    let mut hotel = ServiceDef::update(
        "bookHotel",
        "rooms",
        UpdateAction::insert(
            Locator::parse("rooms").expect("locator"),
            vec![Fragment::elem("confirmation").with_attr("room", "204").with_text("double room for $who")],
        ),
    )
    .with_results(&["confirmation"]);
    if hotel_fails {
        hotel.injected_fault = Some(Fault::new("NoVacancy", "hotel fully booked"));
    }
    peers[3].registry.register(hotel);

    let mut sim = Sim::new(SimConfig::default(), peers);
    sim.actor_mut(PeerId(1)).auto_submit = Some(("planTrip".into(), vec![]));
    sim.schedule_timer(0, PeerId(1), 0);
    sim
}

fn run(label: &str, hotel_fails: bool, with_handler: bool) {
    println!("— {label} —");
    let mut sim = build_network(hotel_fails, with_handler);
    sim.run();
    let origin = sim.actor(PeerId(1));
    let outcome = origin.outcomes.first().expect("transaction resolved");
    println!("  outcome: {}", if outcome.committed { "COMMITTED" } else { "ABORTED" });
    if let Some(items) = origin.results.get(&outcome.txn) {
        for item in items {
            println!("  confirmation: {}", item.to_xml());
        }
    }
    println!("  airline db : {}", sim.actor(PeerId(2)).repo.get("flights").expect("doc").to_xml());
    println!("  hotel db   : {}", sim.actor(PeerId(3)).repo.get("rooms").expect("doc").to_xml());
    println!();
}

fn main() {
    // Happy path: both bookings land.
    run("trip booking succeeds", false, false);
    // The hotel faults: the flight booking is compensated away ("Cancel
    // Hotel Booking" generalized — constructed from the log, not
    // pre-declared).
    run("hotel faults → flight booking compensated", true, false);
    // Forward recovery: a catchAll handler substitutes a voucher and the
    // transaction commits without the hotel.
    run("hotel faults, voucher handler → commits", true, true);
}
