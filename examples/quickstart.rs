//! Quickstart: the paper's §3.1 in twenty lines.
//!
//! Parse the ATPList document, run the paper's delete/replace operations,
//! and watch dynamic compensation restore the exact original state from
//! the log — no pre-declared compensators anywhere.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use axml::core::compensate::{apply_compensation, compensation_for_effects};
use axml::prelude::*;

fn main() {
    let mut doc = Document::parse(
        r#"<ATPList>
            <player rank="1">
                <name><lastname>Federer</lastname></name>
                <citizenship>Swiss</citizenship>
            </player>
            <player rank="2">
                <name><lastname>Nadal</lastname></name>
                <citizenship>Spanish</citizenship>
            </player>
        </ATPList>"#,
    )
    .expect("well-formed XML");
    let before = doc.to_xml();
    println!("initial document:\n  {before}\n");

    // The paper's delete operation (§3.1), verbatim.
    let delete = UpdateAction::delete(
        Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;")
            .expect("locator parses"),
    );
    // And its replace operation: Nadal becomes a USA citizen.
    let replace = UpdateAction::replace(
        Locator::parse("Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal;")
            .expect("locator parses"),
        vec![Fragment::elem_text("citizenship", "USA")],
    );

    // Apply both, logging the primitive effects.
    let mut log = Vec::new();
    for (name, action) in [("delete", &delete), ("replace", &replace)] {
        let report = action.apply(&mut doc).expect("applies");
        println!("applied {name:7} → {} effect(s), {} node(s) touched", report.effects.len(), report.cost_nodes);
        log.extend(report.effects);
    }
    println!("after updates:\n  {}\n", doc.to_xml());

    // Dynamic compensation: constructed from the log, at run time.
    let compensation = compensation_for_effects(&log);
    println!("compensating operations (reverse order):");
    for action in &compensation {
        println!("  {}", action.to_action_xml());
    }
    apply_compensation(&mut doc, &compensation).expect("compensation applies");
    println!("\nafter compensation:\n  {}", doc.to_xml());
    assert_eq!(doc.to_xml(), before, "exact original state restored");
    println!("\n✔ compensation restored the exact pre-transaction state");
}
