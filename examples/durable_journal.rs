//! Durability: journal a transaction context to disk, "crash", replay,
//! and recover in-doubt work by presumed abort.
//!
//! ```text
//! cargo run --example durable_journal
//! ```

use axml::core::durability::{decode, encode, journal_of, recover_in_doubt, replay};
use axml::core::{ActiveList, InvocationId, TransactionContext, TxnId};
use axml::prelude::*;

fn main() {
    // A peer (AP3) serving part of transaction T1.0: it has replaced a
    // slot in its document and invoked S6 on AP6.
    let txn = TxnId::new(PeerId(1), 0);
    let mut chain = ActiveList::new(PeerId(1), true);
    chain.add_invocation(PeerId(1), PeerId(3), false);
    let mut tc = TransactionContext::new(txn, Some((PeerId(1), InvocationId::new(PeerId(1), 0))), chain, 10);

    let mut repo = Repository::new();
    repo.put_xml("d3", "<d><slot>initial</slot></d>").unwrap();
    let action =
        UpdateAction::replace(Locator::parse("d/slot").unwrap(), vec![Fragment::elem_text("slot", "half-done-work")]);
    let report = action.apply(repo.get_mut("d3").unwrap()).unwrap();
    tc.record_local("d3", "S3", report.effects);
    tc.record_remote(PeerId(6), InvocationId::new(PeerId(3), 0), "S6");

    println!("document before crash : {}", repo.get("d3").unwrap().to_xml());

    // Persist the journal (JSON lines), as the peer would incrementally.
    let path = std::env::temp_dir().join("axml-demo-journal.jsonl");
    let text = encode(&journal_of(&tc));
    std::fs::write(&path, &text).expect("journal written");
    println!("\njournal ({} entries) written to {}:", journal_of(&tc).len(), path.display());
    for line in text.lines() {
        let shown = if line.len() > 100 { format!("{}…", &line[..100]) } else { line.to_string() };
        println!("  {shown}");
    }

    // 💥 crash: the in-memory context is gone; only the repo (recovered
    // from its own storage) and the journal survive.
    drop(tc);

    // Reboot: replay the journal, find the in-doubt context, presume
    // abort, and compensate from the log.
    let loaded = decode(&std::fs::read_to_string(&path).expect("journal read")).expect("journal decodes");
    let mut contexts = replay(&loaded).expect("journal replays");
    println!("\nreplayed {} context(s); state: {:?}", contexts.len(), contexts[0].state);
    let outcome = recover_in_doubt(&mut contexts, &mut repo, 99);
    println!(
        "recovery: presumed aborted {:?}, compensated {} node(s)",
        outcome.presumed_aborted, outcome.comp_cost_nodes
    );
    println!("document after recovery: {}", repo.get("d3").unwrap().to_xml());
    assert!(repo.get("d3").unwrap().to_xml().contains("initial"));
    std::fs::remove_file(&path).ok();
    println!("\n✔ the in-doubt transaction's effects were rolled back from the durable log");
}
