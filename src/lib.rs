#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `axml` — Atomicity for P2P based XML Repositories.
//!
//! A from-scratch Rust reproduction of Biswas & Kim, *"Atomicity for P2P
//! based XML Repositories"* (ICDE 2007): a transactional framework giving
//! relaxed ACID properties to ActiveXML (AXML) systems — XML documents
//! with embedded Web service calls hosted on P2P peers.
//!
//! This facade crate re-exports the whole stack:
//!
//! | layer | crate | what lives there |
//! |---|---|---|
//! | XML store | [`xml`] | arena documents, stable node ids, parser, fragments |
//! | queries | [`query`] | paths, select-from-where, update actions, effects |
//! | ActiveXML | [`doc`] | embedded service calls, services, materialization |
//! | P2P fabric | [`p2p`] | deterministic simulator, churn, failure detection |
//! | **the paper** | [`core`] | transactions, dynamic compensation, nested & peer-independent recovery, chaining |
//! | workloads | [`workload`] | generators for documents, ops, trees |
//!
//! # Quickstart
//!
//! ```
//! use axml::prelude::*;
//!
//! // The paper's Fig. 1 scenario: a transaction over six peers, with a
//! // fault injected at AP5 — the nested recovery protocol aborts and
//! // compensates everything.
//! let mut cfg = PeerConfig::default();
//! cfg.use_alternative_providers = false;
//! let mut scenario = ScenarioBuilder::fig1().fault_at(5).config(cfg).build();
//! let report = scenario.run();
//! assert!(!report.outcome.unwrap().committed);
//! assert!(report.atomic, "all effects were compensated");
//! ```

pub use axml_core as core;
pub use axml_doc as doc;
pub use axml_p2p as p2p;
pub use axml_query as query;
pub use axml_workload as workload;
pub use axml_xml as xml;

/// The most commonly used items, for `use axml::prelude::*`.
pub mod prelude {
    pub use axml_core::scenarios::{Flavor, Scenario, ScenarioBuilder, ScenarioReport};
    pub use axml_core::{
        sphere_guarantees_atomicity, ActiveList, AxmlPeer, CompensatingService, InvocationId, PeerConfig,
        RecoveryStyle, TransactionContext, TxnId, TxnMsg, TxnOutcome, TxnState,
    };
    pub use axml_doc::{
        EvalMode, Fault, MaterializationEngine, Repository, ScMode, ServiceCall, ServiceDef, ServiceRegistry,
        TransparentView,
    };
    pub use axml_p2p::{ChurnSchedule, Directory, PeerId, Sim, SimConfig};
    pub use axml_query::{Locator, PathExpr, SelectQuery, UpdateAction};
    pub use axml_xml::{Document, Fragment, NodeId, QName};
}
