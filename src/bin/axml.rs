//! `axml` — command-line front end to the AXML transactional stack.
//!
//! ```text
//! axml query <file.xml> "<select query>"        evaluate a query (transparent view)
//! axml apply <file.xml> "<action-xml>"          apply an update action, show effects + compensation
//! axml roundtrip <file.xml> "<action-xml>"      apply, compensate, verify restoration
//! axml fig1 [fault]                             run the paper's Fig. 1 scenario
//! axml fig2 <a|b|c|d> [--no-chaining]           run a Fig. 2 disconnection scenario
//! ```

use axml::core::compensate::{apply_compensation, compensation_for_effects};
use axml::core::scenarios::{Flavor, ScenarioBuilder};
use axml::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("query") => cmd_query(&args[1..]),
        Some("apply") => cmd_apply(&args[1..], false),
        Some("roundtrip") => cmd_apply(&args[1..], true),
        Some("fig1") => cmd_fig1(&args[1..]),
        Some("fig2") => cmd_fig2(&args[1..]),
        _ => {
            eprintln!("usage: axml <query|apply|roundtrip|fig1|fig2> …");
            eprintln!("  axml query <file.xml> \"Select p/x from p in root//y where …\"");
            eprintln!("  axml apply <file.xml> '<action type=\"delete\"><location>…</location></action>'");
            eprintln!("  axml roundtrip <file.xml> '<action …>…</action>'");
            eprintln!("  axml fig1 [fault]");
            eprintln!("  axml fig2 <a|b|c|d> [--no-chaining]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<Document, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Document::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [file, query] = args else {
        return Err("usage: axml query <file.xml> \"<select query>\"".into());
    };
    let doc = load(file)?;
    let q = SelectQuery::parse(query).map_err(|e| e.to_string())?;
    let hits = TransparentView::eval(&doc, &q).map_err(|e| e.to_string())?;
    println!("{} result(s):", hits.len());
    for h in hits {
        println!("{}", doc.subtree_to_xml(h));
    }
    Ok(())
}

fn cmd_apply(args: &[String], roundtrip: bool) -> Result<(), String> {
    let [file, action_xml] = args else {
        return Err("usage: axml apply|roundtrip <file.xml> '<action …>'".into());
    };
    let mut doc = load(file)?;
    let before = doc.to_xml();
    let action = UpdateAction::parse_action_xml(action_xml).map_err(|e| e.to_string())?;
    let report = action.apply(&mut doc).map_err(|e| e.to_string())?;
    println!("applied: {} effect(s), {} node(s) affected", report.effects.len(), report.cost_nodes);
    println!("document after:\n{}", doc.to_xml());
    let comp = compensation_for_effects(&report.effects);
    println!("\ncompensating operations ({}):", comp.len());
    for c in &comp {
        println!("  {}", c.to_action_xml());
    }
    if roundtrip {
        apply_compensation(&mut doc, &comp).map_err(|e| e.to_string())?;
        if doc.to_xml() == before {
            println!("\n✔ compensation restored the exact original document");
        } else {
            return Err("compensation failed to restore the original document".into());
        }
    }
    Ok(())
}

fn print_report(report: &axml::core::scenarios::ScenarioReport) {
    match &report.outcome {
        Some(o) => println!(
            "outcome: {} (t={}..{})",
            if o.committed { "COMMITTED" } else { "ABORTED" },
            o.started_at,
            o.resolved_at
        ),
        None => println!("outcome: unresolved by deadline"),
    }
    println!("atomic: {}", report.atomic);
    println!("messages: {:?}", report.metrics.by_kind);
    for (peer, st) in &report.stats {
        for d in &st.detections {
            println!("{peer} detected {} at t={} via {:?}", d.disconnected, d.at, d.how);
        }
    }
}

fn cmd_fig1(args: &[String]) -> Result<(), String> {
    let fault = args.iter().any(|a| a == "fault");
    let mut builder = ScenarioBuilder::fig1().flavor(Flavor::Update);
    if fault {
        let mut cfg = PeerConfig::default();
        cfg.use_alternative_providers = false;
        builder = builder.fault_at(5).config(cfg);
        println!("Fig. 1 with a fault injected at AP5 (while processing S5):");
    } else {
        println!("Fig. 1, fault-free:");
    }
    let mut scenario = builder.build();
    let report = scenario.run();
    print_report(&report);
    if let Some(txn) = report.txn {
        if let Some(tc) = scenario.sim.actor(scenario.origin).context(txn) {
            println!("active-peer list: {}", tc.chain.to_notation());
        }
    }
    Ok(())
}

fn cmd_fig2(args: &[String]) -> Result<(), String> {
    let which = args.first().map(String::as_str).unwrap_or("b");
    let chaining = !args.iter().any(|a| a == "--no-chaining");
    let mut cfg = PeerConfig::default();
    cfg.chaining = chaining;
    let mut builder = ScenarioBuilder::fig2().flavor(Flavor::Update);
    match which {
        "a" => {
            cfg.use_alternative_providers = false;
            builder.durations.insert(6, 500);
            builder = builder.disconnect(40, 6);
            println!("Fig. 2 (a): leaf AP6 disconnects; parent AP3 detects (chaining={chaining}):");
        }
        "b" => {
            cfg.ping_interval = 300;
            cfg.ping_timeout = 700;
            builder.durations.insert(6, 60);
            let (b, _replica) = builder.with_replica(3);
            builder = b.disconnect(30, 3);
            println!("Fig. 2 (b): parent AP3 disconnects; child AP6 detects (chaining={chaining}):");
        }
        "c" => {
            cfg.use_alternative_providers = false;
            builder.durations.insert(6, 2000);
            builder.durations.insert(3, 3000);
            builder = builder.disconnect(50, 3);
            println!("Fig. 2 (c): child AP3 disconnects; parent AP2 detects (chaining={chaining}):");
        }
        "d" => {
            cfg.stream_interval = Some(7);
            cfg.ping_interval = 400;
            cfg.ping_timeout = 900;
            cfg.use_alternative_providers = false;
            for (p, d) in [(3u32, 3000u64), (4, 3000), (5, 50), (6, 50)] {
                builder.durations.insert(p, d);
            }
            builder = builder.disconnect(60, 3);
            println!("Fig. 2 (d): sibling AP4 detects AP3 via streams (chaining={chaining}):");
        }
        other => return Err(format!("unknown scenario `{other}` (expected a, b, c, or d)")),
    }
    let mut scenario = builder.config(cfg).build();
    let report = scenario.run();
    print_report(&report);
    let reused: u64 = report.stats.values().map(|s| s.work_reused).sum();
    let wasted: u64 = report.stats.values().map(|s| s.work_wasted).sum();
    println!("work reused: {reused}, wasted: {wasted}");
    Ok(())
}
